package expt

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"codelayout/internal/appmodel"
	"codelayout/internal/codegen"
	"codelayout/internal/core"
	"codelayout/internal/isa"
	"codelayout/internal/kernel"
	"codelayout/internal/machine"
	"codelayout/internal/profile"
	"codelayout/internal/program"
	"codelayout/internal/pstore"
	"codelayout/internal/reclayout"
	"codelayout/internal/trace"
	"codelayout/internal/workload"
)

// TrainConfig identifies one training run: which workload was profiled and
// the machine shape it ran under. It is the train-side half of a session's
// configuration — the evaluation half lives in the remaining Options fields —
// so a layout can be trained under one configuration and evaluated under
// another (the profile-drift experiments). Zero fields inherit from the
// evaluating session's options, so the zero TrainConfig means "self-trained":
// same workload, same shard count, same processor count as the evaluation.
type TrainConfig struct {
	// Workload is the transaction mix the profiling run executes; nil uses
	// the session's evaluation workload. A non-nil workload must be covered
	// by the profile source's image (see NewProfileSource).
	Workload workload.Workload
	// Seed drives the profiling run's clients; 0 inherits the session's
	// evaluation seed (DefaultOptions sets a distinct train seed, as the
	// paper trains and evaluates on different runs).
	Seed int64
	// Shards is the partitioned-engine count of the profiling run; 0
	// inherits the session's evaluation shard count.
	Shards int
	// Txns is the profiled committed-transaction count; 0 inherits the
	// session's measured transaction count.
	Txns int
	// CPUs is the profiling run's processor count; 0 inherits.
	CPUs int
	// WarmupTxns commit before profiling begins; 0 inherits.
	WarmupTxns int
}

// shardKey normalizes a shard count for specs and memo keys (0 and 1 are the
// same single-engine machine).
func shardKey(shards int) int {
	if shards <= 1 {
		return 1
	}
	return shards
}

// Spec renders a fully resolved train config as the canonical memo-key
// string. Two train configs with equal specs share one training run; any
// difference — workload, shard count, seed, length — keys a separate run, so
// mismatched train/eval pairs can never collide in a memo.
func (tc TrainConfig) Spec() string {
	name := "?"
	if tc.Workload != nil {
		name = tc.Workload.Name()
	}
	return fmt.Sprintf("%s/s%d/c%d/seed%d/w%d/x%d",
		name, shardKey(tc.Shards), tc.CPUs, tc.Seed, tc.WarmupTxns, tc.Txns)
}

// trainRun is one memoized training run: the exact Pixie profiles of the app
// and kernel plus the DCPI-style sampling profile over the same run, and the
// observed transaction-kind mix (the drift monitor's reference).
type trainRun struct {
	app      *profile.Profile
	kern     *profile.Profile
	dcpi     *profile.Profile
	kindFreq map[string]float64
	// fields is the field-access profile the engines tallied while training
	// (table → field → read/write counts) — what the record-layout pass
	// groups hot fields from. Training always runs the interleaved baseline
	// layout, so the profile is layout-independent.
	fields reclayout.Profile
}

// ProfileSource owns the built images, their baseline layouts, and memos of
// training runs and optimized layouts keyed by resolved TrainConfig spec.
// It is the portable-profile seam: sessions borrow the source's images, so
// every profile the source trains — under any workload or shard count the
// image covers — is over one shared program, and every layout it builds is
// shared by all sessions of the source (a layout depends only on the
// program, the training profile and the pipeline, never on the evaluation
// config). All methods are safe for concurrent use.
type ProfileSource struct {
	opt       Options
	workloads map[string]workload.Workload // name → workload covered by the image

	appImg   *codegen.Image
	kernImg  *codegen.Image
	baseApp  *program.Layout
	baseKern *program.Layout

	// store, when non-nil, persists training runs across processes
	// (Options.ProfileStore); imageID fingerprints both program images so a
	// stored profile can never be applied to a different build.
	store   *pstore.Store
	imageID string

	mu        sync.Mutex
	trainExec uint64 // training runs actually executed (not served by a memo or the store)
	lastHit   *pstore.Entry
	runs      map[string]*trainRun
	trainErr  map[string]error
	inflight  map[string]chan struct{}
	layouts   map[layoutKey]*program.Layout
	reports   map[layoutKey]*core.Report
	kernLay   map[layoutKey]*program.Layout
	// images holds per-layout specialized app images: the fusion layout
	// clones procedures, so its layout addresses blocks the shared image
	// does not have, and measurements must run over the grown image.
	images map[layoutKey]*codegen.Image

	// memo hit/miss counters (MemoStats): how often the train and layout
	// memos answered from cache vs executed work.
	trainHits, trainMisses   uint64
	layoutHits, layoutMisses uint64
}

// NewProfileSource builds the images and baseline layouts for o's workload
// plus any extra workloads whose transaction models should join the app
// image. With extras the image is a union binary: a profile trained while
// running any covered workload maps onto the same program, which is what
// makes train/eval workload mismatch experiments possible. With no extras
// the image is bit-identical to the one NewSession has always built.
func NewProfileSource(o Options, extra ...workload.Workload) (*ProfileSource, error) {
	if o.Workload == nil {
		o.Workload = defaultWorkload()
	}
	ps := &ProfileSource{
		opt:       o,
		workloads: map[string]workload.Workload{o.Workload.Name(): o.Workload},
		runs:      make(map[string]*trainRun),
		trainErr:  make(map[string]error),
		inflight:  make(map[string]chan struct{}),
		layouts:   make(map[layoutKey]*program.Layout),
		reports:   make(map[layoutKey]*core.Report),
		kernLay:   make(map[layoutKey]*program.Layout),
		images:    make(map[layoutKey]*codegen.Image),
	}
	var extras []workload.Workload
	for _, w := range extra {
		if _, dup := ps.workloads[w.Name()]; dup {
			continue
		}
		ps.workloads[w.Name()] = w
		extras = append(extras, w)
	}
	var err error
	ps.appImg, err = appmodel.Build(appmodel.Config{
		Seed: o.Seed, LibScale: o.LibScale, ColdWords: o.ColdWords,
		Workload: o.Workload, ExtraWorkloads: extras,
		FastPath: o.PredictFastPath,
	})
	if err != nil {
		return nil, fmt.Errorf("expt: app image: %w", err)
	}
	ps.kernImg, err = kernel.Build(kernel.Config{Seed: o.Seed + 1, ColdWords: o.KernColdWords})
	if err != nil {
		return nil, fmt.Errorf("expt: kernel image: %w", err)
	}
	ps.baseApp, err = program.BaselineLayout(ps.appImg.Prog)
	if err != nil {
		return nil, err
	}
	ps.baseKern, err = program.BaselineLayout(ps.kernImg.Prog)
	if err != nil {
		return nil, err
	}
	ps.layouts[layoutKey{name: "base"}] = ps.baseApp
	ps.kernLay[layoutKey{name: "kbase"}] = ps.baseKern
	ps.store = o.ProfileStore
	ps.imageID = fmt.Sprintf("%016x-%016x", ps.appImg.Prog.Fingerprint(), ps.kernImg.Prog.Fingerprint())
	return ps, nil
}

// storeKey is a training run's identity in the persistent store: the resolved
// train spec, every option that shapes the profiling run beyond the spec, and
// the content fingerprints of both program images (a profile indexes the
// blocks of one specific build).
func (ps *ProfileSource) storeKey(spec string) pstore.Key {
	return pstore.Key{
		Spec: fmt.Sprintf("%s|p%d/gc%d/pc%t/fp%t/dcpi%d",
			spec, ps.opt.ProcsPerCPU, ps.opt.GroupCommitWindowInstr,
			ps.opt.PerCommitLogFlush, ps.opt.PredictFastPath, ps.opt.DCPIPeriod),
		Image: ps.imageID,
	}
}

// memoStats reports the source-side memo counters (train + layout halves of
// a session's MemoStats).
func (ps *ProfileSource) memoStats() (train, layout MemoCounters) {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	train = MemoCounters{Hits: ps.trainHits, Misses: ps.trainMisses, Entries: uint64(len(ps.runs))}
	layout = MemoCounters{Hits: ps.layoutHits, Misses: ps.layoutMisses, Entries: uint64(len(ps.layouts))}
	return train, layout
}

// TrainRunsExecuted reports how many training simulations this source has
// actually run — memo and store hits do not count, which is what the pinned
// warm-store regression asserts on.
func (ps *ProfileSource) TrainRunsExecuted() uint64 {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	return ps.trainExec
}

// StoreStats reports the persistent store's hit/miss counters (zero Stats
// and false when the source has no store).
func (ps *ProfileSource) StoreStats() (pstore.Stats, bool) {
	if ps.store == nil {
		return pstore.Stats{}, false
	}
	return ps.store.Stats(), true
}

// LastStoreHit returns the most recent entry served from the persistent
// store (nil if every training so far was executed) — commands report its
// age next to the hit counters.
func (ps *ProfileSource) LastStoreHit() *pstore.Entry {
	ps.mu.Lock()
	defer ps.mu.Unlock()
	return ps.lastHit
}

// trainEntry trains (or loads) tc and packages the run as a store entry —
// the currency of the persistent store and of profile blending.
func (ps *ProfileSource) trainEntry(tc TrainConfig) (*pstore.Entry, error) {
	tc = ps.opt.resolveTrain(tc)
	run, err := ps.train(tc)
	if err != nil {
		return nil, err
	}
	k := ps.storeKey(tc.Spec())
	return &pstore.Entry{
		Spec:     k.Spec,
		Image:    k.Image,
		KindFreq: run.kindFreq,
		Fields:   run.fields,
		App:      run.app,
		Kern:     run.kern,
		DCPI:     run.dcpi,
	}, nil
}

// fieldProfile trains (or loads) tc and returns its field-access profile —
// nil (static-hint fallback) when the run predates field tallying (an old
// store entry).
func (ps *ProfileSource) fieldProfile(tc TrainConfig) (reclayout.Profile, error) {
	run, err := ps.train(ps.opt.resolveTrain(tc))
	if err != nil {
		return nil, err
	}
	return run.fields, nil
}

// AppImage exposes the shared application image.
func (ps *ProfileSource) AppImage() *codegen.Image { return ps.appImg }

// KernelImage exposes the shared kernel image.
func (ps *ProfileSource) KernelImage() *codegen.Image { return ps.kernImg }

// Covers reports whether the named workload's transaction models are part of
// the source's app image (and it can therefore be trained on or evaluated).
func (ps *ProfileSource) Covers(name string) bool {
	_, ok := ps.workloads[name]
	return ok
}

// WorkloadNames lists the workloads the image covers, sorted.
func (ps *ProfileSource) WorkloadNames() []string {
	names := make([]string, 0, len(ps.workloads))
	for n := range ps.workloads {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Train runs (or returns the memoized) training run for a fully resolved
// config. Concurrent callers for one spec share a single run.
func (ps *ProfileSource) train(tc TrainConfig) (*trainRun, error) {
	if tc.Workload == nil {
		return nil, fmt.Errorf("expt: train config has no workload")
	}
	if !ps.Covers(tc.Workload.Name()) {
		return nil, fmt.Errorf("expt: train workload %q is not modeled in this image (covers %v); list it in NewProfileSource",
			tc.Workload.Name(), ps.WorkloadNames())
	}
	spec := tc.Spec()
	for {
		ps.mu.Lock()
		if run, ok := ps.runs[spec]; ok {
			ps.trainHits++
			ps.mu.Unlock()
			return run, nil
		}
		if err, ok := ps.trainErr[spec]; ok {
			ps.mu.Unlock()
			return nil, err
		}
		if ch, ok := ps.inflight[spec]; ok {
			ps.mu.Unlock()
			<-ch // someone else is running this training
			continue
		}
		ch := make(chan struct{})
		ps.inflight[spec] = ch
		ps.trainMisses++
		ps.mu.Unlock()

		run, err := ps.trainOrLoad(tc, spec)
		ps.mu.Lock()
		if err != nil {
			ps.trainErr[spec] = err
		} else {
			ps.runs[spec] = run
		}
		delete(ps.inflight, spec)
		close(ch)
		ps.mu.Unlock()
		return run, err
	}
}

// isPipelineSpec reports whether a layout name is a raw pass-pipeline spec
// ("chain,split:fine,porder:ph,materialize") rather than a registered combo
// name: specs contain the pass separators, combo names never do. Raw specs
// are first-class layouts — the search engine's genomes measure through the
// same memo layer as the named combos.
func isPipelineSpec(name string) bool { return strings.ContainsAny(name, ",:") }

// pipelineFuses reports whether a parsed pipeline contains the txfuse pass
// (whose layouts clone procedures and therefore need a specialized image).
func pipelineFuses(pl core.Pipeline) bool {
	for _, p := range pl {
		if n := p.Name(); n == "txfuse" || strings.HasPrefix(n, "txfuse:") {
			return true
		}
	}
	return false
}

// layoutSpec resolves a layout name to the pass pipeline implementing it
// and the profile (from the given training run) it trains on. The paper's
// combinations assemble their pipeline through core.PipelineFor; the
// extensions name their pass lists directly, and a raw pipeline spec parses
// as itself.
func (ps *ProfileSource) layoutSpec(tc TrainConfig, name string) (core.Pipeline, *profile.Profile, error) {
	run, err := ps.train(tc)
	if err != nil {
		return nil, nil, err
	}
	if isPipelineSpec(name) {
		pl, err := core.ParsePipeline(name)
		return pl, run.app, err
	}
	var o core.Options
	prof := run.app
	switch name {
	case "porder":
		o = core.Options{Order: core.OrderPettisHansen}
	case "chain":
		o = core.Options{Chain: true}
	case "chain+split":
		o = core.Options{Chain: true, Split: core.SplitFine}
	case "chain+porder":
		o = core.Options{Chain: true, Order: core.OrderPettisHansen}
	case "all":
		o = core.Options{Chain: true, Split: core.SplitFine, Order: core.OrderPettisHansen}
	case "hotcold":
		o = core.Options{Chain: true, Split: core.SplitHotCold, Order: core.OrderPettisHansen}
	case "cfa":
		o = core.Options{Chain: true, Split: core.SplitFine, Order: core.OrderPettisHansen,
			CFA: &core.CFAOptions{CacheBytes: 64 << 10, ReservedBytes: 16 << 10}}
	case "dcpi-all":
		o = core.Options{Chain: true, Split: core.SplitFine, Order: core.OrderPettisHansen}
		prof = run.dcpi
	case "ipchain":
		pl, err := core.ComboPipeline("ipchain")
		return pl, run.app, err
	case "fusion":
		// Resolved here only for PipelineSpec; layout() builds fusion
		// through fusedLayout, which supplies kind roots and a cloner.
		pl, err := core.ComboPipeline("fusion")
		return pl, run.app, err
	default:
		return nil, nil, fmt.Errorf("expt: unknown layout %q", name)
	}
	pl, err := core.PipelineFor(o)
	return pl, prof, err
}

// layout builds (or returns the memoized) app layout trained under a fully
// resolved config. Layouts depend only on source state, so every session of
// the source shares them.
func (ps *ProfileSource) layout(tc TrainConfig, name string) (*program.Layout, error) {
	key := layoutKey{train: tc.Spec(), name: name}
	if name == "base" {
		key.train = "" // baselines are profile-independent
	}
	ps.mu.Lock()
	l, ok := ps.layouts[key]
	if ok {
		ps.layoutHits++
		ps.mu.Unlock()
		return l, nil
	}
	ps.layoutMisses++
	ps.mu.Unlock()
	if name == "fusion" {
		return ps.fusedLayout(tc, key, nil)
	}
	if isPipelineSpec(name) {
		pl, err := core.ParsePipeline(name)
		if err != nil {
			return nil, err
		}
		if pipelineFuses(pl) {
			return ps.fusedLayout(tc, key, pl)
		}
	}
	pl, prof, err := ps.layoutSpec(tc, name)
	if err != nil {
		return nil, err
	}
	// Copy the profile so EnsureEdges on a sampled profile does not
	// contaminate the shared instance. When the source carries no measured
	// edges (sampling profiles, or a degenerate training run), drop the
	// shared empty map too: concurrent layout builds would otherwise
	// estimate edges into the same map without a lock.
	pf := &profile.Profile{Name: prof.Name, BlockCount: prof.BlockCount, EdgeCount: prof.EdgeCount}
	if name == "dcpi-all" || !prof.HasEdges() {
		pf = &profile.Profile{Name: prof.Name, BlockCount: prof.BlockCount}
	}
	l, rep, err := pl.Run(ps.appImg.Prog, pf)
	if err != nil {
		return nil, fmt.Errorf("expt: layout %q (train %s): %w", name, key.train, err)
	}
	ps.mu.Lock()
	defer ps.mu.Unlock()
	if prev, ok := ps.layouts[key]; ok {
		return prev, nil // another goroutine built it concurrently
	}
	ps.layouts[key] = l
	ps.reports[key] = rep
	return l, nil
}

// fusedLayout builds a fusing layout — the named "fusion" combo (pl nil) or
// any raw pipeline spec containing txfuse — over a specialized copy of the
// app image, so cloned procedures become real code the simulator can fetch.
// The specialized image is memoized next to the layout (appImageFor); the
// shared image is never mutated.
func (ps *ProfileSource) fusedLayout(tc TrainConfig, key layoutKey, pl core.Pipeline) (*program.Layout, error) {
	run, err := ps.train(tc)
	if err != nil {
		return nil, err
	}
	if pl == nil {
		if pl, err = core.ComboPipeline("fusion"); err != nil {
			return nil, err
		}
	}
	simg := ps.appImg.Specialize()
	roots, err := ps.fusionRoots(simg)
	if err != nil {
		return nil, err
	}
	// txfuse moves counts and edges onto clones, so it needs a private deep
	// copy of the training profile, not the shared instance.
	pf := &profile.Profile{
		Name:       run.app.Name,
		BlockCount: append([]uint64(nil), run.app.BlockCount...),
		EdgeCount:  make(map[uint64]uint64, len(run.app.EdgeCount)),
	}
	for k, v := range run.app.EdgeCount {
		pf.EdgeCount[k] = v
	}
	l, rep, err := pl.RunFused(simg.Prog, pf, roots, simg)
	if err != nil {
		return nil, fmt.Errorf("expt: layout %q (train %s): %w", key.name, key.train, err)
	}
	if l.TotalBytes() > isa.AppTextLimitBytes {
		return nil, fmt.Errorf("expt: fused layout is %d bytes, past the %d-byte app text map; lower the txfuse clone budget",
			l.TotalBytes(), isa.AppTextLimitBytes)
	}
	ps.mu.Lock()
	defer ps.mu.Unlock()
	if prev, ok := ps.layouts[key]; ok {
		return prev, nil // another goroutine built it concurrently
	}
	ps.layouts[key] = l
	ps.reports[key] = rep
	ps.images[key] = simg
	return l, nil
}

// fusionRoots resolves the kind roots of every covered workload that
// declares them (workload.KindRoots) against an image, in sorted workload
// order so the root list — and therefore the fused layout — is
// deterministic.
func (ps *ProfileSource) fusionRoots(img *codegen.Image) ([]core.KindRoot, error) {
	wls := make([]workload.Workload, 0, len(ps.workloads))
	for _, name := range ps.WorkloadNames() {
		wls = append(wls, ps.workloads[name])
	}
	roots, err := appmodel.FusionRoots(img, wls...)
	if err != nil {
		return nil, err
	}
	if len(roots) == 0 {
		return nil, fmt.Errorf("expt: the fusion layout needs a workload declaring its kind roots; none of %v does", ps.WorkloadNames())
	}
	return roots, nil
}

// appImageFor returns the app image a layout's measurements must run over:
// the specialized (grown) image when the layout built one, the shared image
// otherwise. Valid once the layout has been built.
func (ps *ProfileSource) appImageFor(tc TrainConfig, name string) *codegen.Image {
	key := layoutKey{train: tc.Spec(), name: name}
	ps.mu.Lock()
	defer ps.mu.Unlock()
	if img, ok := ps.images[key]; ok {
		return img
	}
	return ps.appImg
}

// report returns the optimizer report of a layout built under tc (nil if
// the layout has not been built).
func (ps *ProfileSource) report(tc TrainConfig, name string) *core.Report {
	key := layoutKey{train: tc.Spec(), name: name}
	ps.mu.Lock()
	defer ps.mu.Unlock()
	return ps.reports[key]
}

// kernLayout builds (or returns the memoized) kernel layout: "kbase" or
// "kopt" (the full pipeline over the training run's kernel profile).
func (ps *ProfileSource) kernLayout(tc TrainConfig, name string) (*program.Layout, error) {
	key := layoutKey{train: tc.Spec(), name: name}
	if name == "kbase" {
		key.train = ""
	}
	ps.mu.Lock()
	l, ok := ps.kernLay[key]
	ps.mu.Unlock()
	if ok {
		return l, nil
	}
	if name != "kopt" {
		return nil, fmt.Errorf("expt: unknown kernel layout %q", name)
	}
	run, err := ps.train(tc)
	if err != nil {
		return nil, err
	}
	l, _, err = core.Optimize(ps.kernImg.Prog, run.kern, core.Options{
		Chain: true, Split: core.SplitFine, Order: core.OrderPettisHansen,
	})
	if err != nil {
		return nil, err
	}
	ps.mu.Lock()
	defer ps.mu.Unlock()
	if prev, ok := ps.kernLay[key]; ok {
		return prev, nil
	}
	ps.kernLay[key] = l
	return l, nil
}

// trainOrLoad serves a training run from the persistent store when one is
// configured and holds the key, and executes (then persists) it otherwise.
// Stored profiles are exact, so either path yields the same trainRun.
func (ps *ProfileSource) trainOrLoad(tc TrainConfig, spec string) (*trainRun, error) {
	if ps.store == nil {
		return ps.runTraining(tc, spec)
	}
	key := ps.storeKey(spec)
	if e, ok := ps.store.Get(key); ok {
		ps.mu.Lock()
		ps.lastHit = e
		ps.mu.Unlock()
		return &trainRun{app: e.App, kern: e.Kern, dcpi: e.DCPI, kindFreq: e.KindFreq,
			fields: reclayout.Profile(e.Fields)}, nil
	}
	run, err := ps.runTraining(tc, spec)
	if err != nil {
		return nil, err
	}
	// Persistence is best-effort: a full disk must not fail the experiment,
	// and the in-memory memo still carries the run.
	_ = ps.store.Put(&pstore.Entry{
		Spec: key.Spec, Image: key.Image, CreatedAt: time.Now(),
		KindFreq: run.kindFreq, Fields: run.fields, App: run.app, Kern: run.kern, DCPI: run.dcpi,
	})
	return run, nil
}

// runTraining executes one profiling run: Pixie instrumentation on app and
// kernel plus a DCPI-style sampler over the same run.
func (ps *ProfileSource) runTraining(tc TrainConfig, spec string) (*trainRun, error) {
	px := profile.NewPixie(ps.appImg.Prog, "pixie-train")
	kx := profile.NewPixie(ps.kernImg.Prog, "kprofile")
	dcpi := profile.NewDCPI(ps.baseApp, ps.opt.DCPIPeriod)
	cfg := machine.Config{
		CPUs:                   tc.CPUs,
		ProcsPerCPU:            ps.opt.ProcsPerCPU,
		Seed:                   tc.Seed,
		Shards:                 tc.Shards,
		GroupCommitWindowInstr: ps.opt.GroupCommitWindowInstr,
		PerCommitLogFlush:      ps.opt.PerCommitLogFlush,
		PredictFastPath:        ps.opt.PredictFastPath && shardKey(tc.Shards) > 1,
		WarmupTxns:             tc.WarmupTxns,
		Transactions:           tc.Txns,
		Workload:               tc.Workload,
		AppImage:               ps.appImg,
		AppLayout:              ps.baseApp,
		KernImage:              ps.kernImg,
		KernLayout:             ps.baseKern,
		AppCollector:           px,
		KernCollector:          kx,
		Sinks:                  []trace.Sink{trace.AppOnly(dcpi)},
	}
	m, err := machine.New(cfg)
	if err != nil {
		return nil, fmt.Errorf("expt: training %s: %w", spec, err)
	}
	if _, err := m.Run(); err != nil {
		return nil, fmt.Errorf("expt: training %s: %w", spec, err)
	}
	ps.mu.Lock()
	ps.trainExec++
	ps.mu.Unlock()
	return &trainRun{app: px.Profile, kern: kx.Profile, dcpi: dcpi.Finish("dcpi-train"),
		kindFreq: m.KindFrequencies(), fields: m.FieldProfile()}, nil
}
