package pstore_test

import (
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"codelayout/internal/profile"
	"codelayout/internal/pstore"
)

func testProfile(name string, seed uint64) *profile.Profile {
	pf := &profile.Profile{
		Name:       name,
		BlockCount: make([]uint64, 16),
		EdgeCount:  map[uint64]uint64{},
	}
	for i := range pf.BlockCount {
		pf.BlockCount[i] = seed * uint64(i+1)
	}
	pf.AddEdge(0, 1, seed)
	pf.AddEdge(1, 3, 2*seed)
	pf.AddEdge(3, 0, 3*seed)
	return pf
}

func testEntry(spec string, seed uint64) *pstore.Entry {
	return &pstore.Entry{
		Spec:      spec,
		Image:     "img-abc123",
		CreatedAt: time.Date(2026, 8, 1, 12, 0, 0, 0, time.UTC),
		KindFreq:  map[string]float64{"deposit": 0.7, "transfer": 0.3},
		App:       testProfile("app", seed),
		Kern:      testProfile("kern", seed+7),
		DCPI:      testProfile("dcpi", seed+13),
	}
}

func TestStoreRoundTripDisk(t *testing.T) {
	dir := t.TempDir()
	s, err := pstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	e := testEntry("tpcb/s4/c2/seed1/w20/x200", 5)
	if err := s.Put(e); err != nil {
		t.Fatal(err)
	}

	// A fresh store over the same dir must serve the entry from disk.
	s2, err := pstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := s2.Get(e.Key())
	if !ok {
		t.Fatal("disk round-trip missed")
	}
	if got.App.Fingerprint() != e.App.Fingerprint() ||
		got.Kern.Fingerprint() != e.Kern.Fingerprint() ||
		got.DCPI.Fingerprint() != e.DCPI.Fingerprint() {
		t.Fatal("profiles changed across disk round-trip")
	}
	if !got.CreatedAt.Equal(e.CreatedAt) {
		t.Fatalf("CreatedAt = %v, want %v", got.CreatedAt, e.CreatedAt)
	}
	if got.KindFreq["deposit"] != 0.7 || got.KindFreq["transfer"] != 0.3 {
		t.Fatalf("kind mix changed: %v", got.KindFreq)
	}
	st := s2.Stats()
	if st.Hits != 1 || st.Misses != 0 {
		t.Fatalf("stats = %+v, want 1 hit 0 misses", st)
	}
	// Second Get hits the LRU, not the disk: removing the file must not
	// matter.
	os.Remove(filepath.Join(dir, e.Key().Filename()))
	if _, ok := s2.Get(e.Key()); !ok {
		t.Fatal("LRU front missed after disk file removed")
	}
}

func TestStoreMemoryOnly(t *testing.T) {
	s, err := pstore.Open("")
	if err != nil {
		t.Fatal(err)
	}
	e := testEntry("spec", 3)
	if _, ok := s.Get(e.Key()); ok {
		t.Fatal("empty store hit")
	}
	if err := s.Put(e); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(e.Key()); !ok {
		t.Fatal("memory store missed after put")
	}
	st := s.Stats()
	if st.Hits != 1 || st.Misses != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestStoreCorruptFileEvictedNotFatal(t *testing.T) {
	dir := t.TempDir()
	s, _ := pstore.Open(dir)
	e := testEntry("spec-corrupt", 9)
	if err := s.Put(e); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, e.Key().Filename())

	corruptions := map[string]func([]byte) []byte{
		"truncate":  func(b []byte) []byte { return b[:len(b)/3] },
		"garbage":   func(b []byte) []byte { return []byte("PSTOREv1\nnot gob") },
		"bad magic": func(b []byte) []byte { b[0] ^= 0xff; return b },
		"bit flip": func(b []byte) []byte {
			b[len(b)-9] ^= 0x01 // inside the profile payload: fingerprint check catches it
			return b
		},
	}
	for name, corrupt := range corruptions {
		raw, err := os.ReadFile(path)
		if err != nil {
			// Re-put: the previous case evicted the file.
			if err := s.Put(e); err != nil {
				t.Fatal(err)
			}
			raw, err = os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
		}
		if err := os.WriteFile(path, corrupt(append([]byte(nil), raw...)), 0o644); err != nil {
			t.Fatal(err)
		}
		// ReadEntry must surface the typed error...
		if _, err := pstore.ReadEntry(path); !errors.Is(err, pstore.ErrCorrupt) {
			t.Errorf("%s: ReadEntry error = %v, want ErrCorrupt", name, err)
		}
		// ...and a fresh store's Get must treat it as an evicting miss.
		fresh, _ := pstore.Open(dir)
		if _, ok := fresh.Get(e.Key()); ok {
			t.Fatalf("%s: corrupt file served as a hit", name)
		}
		if _, err := os.Stat(path); !errors.Is(err, os.ErrNotExist) {
			t.Fatalf("%s: corrupt file not evicted", name)
		}
		st := fresh.Stats()
		if st.Evictions != 1 || st.Misses != 1 {
			t.Fatalf("%s: stats = %+v, want 1 eviction 1 miss", name, st)
		}
	}
}

func TestReadEntryMissingFile(t *testing.T) {
	_, err := pstore.ReadEntry(filepath.Join(t.TempDir(), "nope.pstore"))
	if !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("err = %v, want os.ErrNotExist", err)
	}
	if errors.Is(err, pstore.ErrCorrupt) {
		t.Fatal("missing file reported as corrupt")
	}
}

func TestStoreLRUEviction(t *testing.T) {
	s, _ := pstore.Open("")
	s.SetLRUSize(2)
	a, b, c := testEntry("a", 1), testEntry("b", 2), testEntry("c", 3)
	for _, e := range []*pstore.Entry{a, b, c} {
		if err := s.Put(e); err != nil {
			t.Fatal(err)
		}
	}
	if _, ok := s.Get(a.Key()); ok {
		t.Fatal("oldest entry survived past capacity in a memory-only store")
	}
	if _, ok := s.Get(b.Key()); !ok {
		t.Fatal("recent entry evicted")
	}
	if _, ok := s.Get(c.Key()); !ok {
		t.Fatal("newest entry evicted")
	}
}

func TestStoreLRUFallsBackToDisk(t *testing.T) {
	dir := t.TempDir()
	s, _ := pstore.Open(dir)
	s.SetLRUSize(1)
	a, b := testEntry("a", 1), testEntry("b", 2)
	if err := s.Put(a); err != nil {
		t.Fatal(err)
	}
	if err := s.Put(b); err != nil {
		t.Fatal(err)
	}
	// a fell out of the LRU but is still on disk.
	if _, ok := s.Get(a.Key()); !ok {
		t.Fatal("entry evicted from LRU not re-read from disk")
	}
}

func TestKeyFilenameDistinct(t *testing.T) {
	seen := map[string]pstore.Key{}
	for _, k := range []pstore.Key{
		{Spec: "a", Image: "x"},
		{Spec: "a", Image: "y"},
		{Spec: "b", Image: "x"},
		{Spec: "ab", Image: ""}, // vs {"a","b"}: the separator must matter
		{Spec: "a", Image: "b"},
	} {
		name := k.Filename()
		if prev, dup := seen[name]; dup {
			t.Fatalf("keys %+v and %+v share filename %s", prev, k, name)
		}
		seen[name] = k
	}
}

func TestStoreConcurrent(t *testing.T) {
	dir := t.TempDir()
	s, _ := pstore.Open(dir)
	s.SetLRUSize(4)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				e := testEntry(fmt.Sprintf("spec-%d", (g+i)%6), uint64(g*100+i+1))
				if err := s.Put(e); err != nil {
					t.Error(err)
					return
				}
				s.Get(e.Key())
				s.Stats()
			}
		}(g)
	}
	wg.Wait()
}

func TestBlend(t *testing.T) {
	old := testEntry("old", 10)
	old.KindFreq = map[string]float64{"deposit": 1.0}
	neu := testEntry("new", 30)
	neu.KindFreq = map[string]float64{"transfer": 1.0}
	neu.CreatedAt = old.CreatedAt.Add(time.Hour)

	blended, err := pstore.Blend([]*pstore.Entry{old, neu}, []float64{1, 3})
	if err != nil {
		t.Fatal(err)
	}
	// Block 1 of app: old=20, new=60, weights 0.25/0.75 → 5+45 = 50.
	if got := blended.App.Count(1); got != 50 {
		t.Fatalf("blended app count = %d, want 50", got)
	}
	if got := blended.KindFreq["transfer"]; math.Abs(got-0.75) > 1e-9 {
		t.Fatalf("blended transfer freq = %v, want 0.75", got)
	}
	if !blended.CreatedAt.Equal(neu.CreatedAt) {
		t.Fatal("blend CreatedAt should be the newest constituent")
	}
	// Sources unmodified.
	if old.App.Count(1) != 20 || neu.App.Count(1) != 60 {
		t.Fatal("Blend mutated its inputs")
	}
	// Weight normalization: scaling all weights by a constant is a no-op.
	same, err := pstore.Blend([]*pstore.Entry{old, neu}, []float64{100, 300})
	if err != nil {
		t.Fatal(err)
	}
	if same.App.Fingerprint() != blended.App.Fingerprint() {
		t.Fatal("blend is not invariant under weight scaling")
	}
}

func TestBlendRejectsBadInput(t *testing.T) {
	a, b := testEntry("a", 1), testEntry("b", 2)
	cases := []struct {
		name    string
		entries []*pstore.Entry
		weights []float64
	}{
		{"empty", nil, nil},
		{"length mismatch", []*pstore.Entry{a, b}, []float64{1}},
		{"negative weight", []*pstore.Entry{a, b}, []float64{1, -1}},
		{"nan weight", []*pstore.Entry{a, b}, []float64{1, math.NaN()}},
		{"inf weight", []*pstore.Entry{a, b}, []float64{math.Inf(1), 1}},
		{"zero sum", []*pstore.Entry{a, b}, []float64{0, 0}},
	}
	for _, tc := range cases {
		if _, err := pstore.Blend(tc.entries, tc.weights); err == nil {
			t.Errorf("%s: want error", tc.name)
		}
	}
	c := testEntry("c", 3)
	c.Image = "other-image"
	if _, err := pstore.Blend([]*pstore.Entry{a, c}, []float64{1, 1}); err == nil {
		t.Error("cross-image blend: want error")
	}
}
