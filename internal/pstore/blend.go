package pstore

import (
	"fmt"
	"math"
	"sort"
	"time"
)

// Blend merges stored training runs into one synthetic entry, weighting
// each run's counts by the matching weight (normalized to sum to 1). This
// is profile aging: a serving layout trained on yesterday's mix can be
// shaded toward today's by blending the two stored profiles instead of
// retraining from scratch. All entries must index the same image. The
// source entries are not modified.
func Blend(entries []*Entry, weights []float64) (*Entry, error) {
	if len(entries) == 0 {
		return nil, fmt.Errorf("pstore: blend: no entries")
	}
	if len(entries) != len(weights) {
		return nil, fmt.Errorf("pstore: blend: %d entries but %d weights", len(entries), len(weights))
	}
	var sum float64
	for _, w := range weights {
		if math.IsNaN(w) || math.IsInf(w, 0) || w < 0 {
			return nil, fmt.Errorf("pstore: blend: weight %v: must be a non-negative finite number", w)
		}
		sum += w
	}
	if sum == 0 {
		return nil, fmt.Errorf("pstore: blend: weights sum to zero")
	}
	image := entries[0].Image
	var created time.Time
	out := &Entry{
		Spec:     blendSpec(entries, weights),
		Image:    image,
		KindFreq: make(map[string]float64),
	}
	for i, e := range entries {
		if e.Image != image {
			return nil, fmt.Errorf("pstore: blend: entry %d trained on image %s, first on %s", i, e.Image, image)
		}
		w := weights[i] / sum
		if w == 0 {
			continue
		}
		if e.CreatedAt.After(created) {
			created = e.CreatedAt
		}
		app := e.App.Clone()
		kern := e.Kern.Clone()
		if err := app.Scale(w); err != nil {
			return nil, err
		}
		if err := kern.Scale(w); err != nil {
			return nil, err
		}
		if out.App == nil {
			out.App, out.Kern = app, kern
		} else {
			out.App.Merge(app)
			out.Kern.Merge(kern)
		}
		if e.DCPI != nil {
			d := e.DCPI.Clone()
			if err := d.Scale(w); err != nil {
				return nil, err
			}
			if out.DCPI == nil {
				out.DCPI = d
			} else {
				out.DCPI.Merge(d)
			}
		}
		for kind, f := range e.KindFreq {
			out.KindFreq[kind] += w * f
		}
	}
	if out.App == nil {
		return nil, fmt.Errorf("pstore: blend: all nonzero-weight entries missing")
	}
	out.CreatedAt = created
	if len(out.KindFreq) == 0 {
		out.KindFreq = nil
	}
	return out, nil
}

func blendSpec(entries []*Entry, weights []float64) string {
	parts := make([]string, len(entries))
	for i, e := range entries {
		parts[i] = fmt.Sprintf("%s*%g", e.Spec, weights[i])
	}
	sort.Strings(parts)
	s := "blend("
	for i, p := range parts {
		if i > 0 {
			s += "+"
		}
		s += p
	}
	return s + ")"
}

func flattenFreq(freq map[string]float64) ([]string, []float64) {
	if len(freq) == 0 {
		return nil, nil
	}
	names := make([]string, 0, len(freq))
	for name := range freq {
		names = append(names, name)
	}
	sort.Strings(names)
	vals := make([]float64, len(names))
	for i, name := range names {
		vals[i] = freq[name]
	}
	return names, vals
}
