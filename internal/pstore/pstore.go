// Package pstore is the persistent profile store: training runs become
// cached artifacts keyed by their resolved train spec and image identity,
// so a layout server restarted against the same workload skips retraining
// entirely (the "profile once, serve everywhere" loop). Entries hold the
// app/kernel/DCPI profiles plus the observed transaction-kind mix; an
// in-memory LRU fronts an on-disk directory of content-hashed files written
// atomically (temp file + rename). Loads are corruption-tolerant: a file
// that fails to decode or whose embedded fingerprints disagree with its
// contents is evicted from disk and reported as a miss — the caller
// retrains, never crashes.
package pstore

import (
	"bufio"
	"bytes"
	"container/list"
	"crypto/sha256"
	"encoding/gob"
	"encoding/hex"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"codelayout/internal/db"
	"codelayout/internal/profile"
)

// ErrCorrupt is returned (wrapped) when a store file exists but cannot be
// trusted: bad magic, failed decode, key mismatch, or fingerprint mismatch.
var ErrCorrupt = errors.New("pstore: corrupt entry")

// magic prefixes every store file; bump the version on wire changes so old
// files read as corrupt (and therefore retrain) instead of misdecoding.
const magic = "PSTOREv1\n"

// DefaultLRUSize is the default capacity of the in-memory front.
const DefaultLRUSize = 64

// Key identifies one training run. Spec is the resolved train spec string
// (workload, shards, seed, txns, cpus, fast-path and friends — see
// expt.TrainConfig.Spec); Image fingerprints the exact program images the
// profile's block IDs index, because a profile applied to a differently
// built image would be silently wrong, not just stale.
type Key struct {
	Spec  string
	Image string
}

// Filename returns the content-hashed basename for the key: profiles for
// arbitrarily long spec strings map to fixed-size names, and distinct specs
// cannot collide by truncation.
func (k Key) Filename() string {
	h := sha256.Sum256([]byte(k.Spec + "\x00" + k.Image))
	return hex.EncodeToString(h[:]) + ".pstore"
}

// Entry is one stored training run.
type Entry struct {
	Spec      string
	Image     string
	CreatedAt time.Time
	// KindFreq is the normalized transaction-kind mix observed while
	// training; the drift detector compares the live mix against it.
	KindFreq map[string]float64
	// Fields is the field-access profile harvested from the training run
	// (table → field → read/write tallies) — the record-layout pass's
	// training signal. nil in entries written before the field existed; the
	// caller then falls back to static schema hints.
	Fields map[string]map[string]db.FieldAccess
	App    *profile.Profile
	Kern   *profile.Profile
	DCPI   *profile.Profile // nil when sampling was off
}

// Key returns the entry's store key.
func (e *Entry) Key() Key { return Key{Spec: e.Spec, Image: e.Image} }

// Age returns how long ago the entry was trained.
func (e *Entry) Age(now time.Time) time.Duration { return now.Sub(e.CreatedAt) }

// wireEntry is the on-disk form. The kind mix is flattened to parallel
// slices (gob map order is random) and each profile carries its fingerprint
// so bit rot inside a structurally valid gob stream is still caught.
type wireEntry struct {
	Spec      string
	Image     string
	CreatedAt time.Time
	KindNames []string
	KindFreqs []float64
	// The field-access profile, flattened to parallel slices sorted by key
	// (gob map order is random): FieldKeys[i] is "table\x00field". Absent in
	// files written before the record-layout pass existed — they decode to
	// empty slices and a nil Entry.Fields.
	FieldKeys   []string
	FieldReads  []uint64
	FieldWrites []uint64
	App         *profile.Profile
	Kern        *profile.Profile
	DCPI        *profile.Profile
	AppFP       uint64
	KernFP      uint64
	DCPIFP      uint64
}

// flattenFields turns a field-access profile into the wire form's sorted
// parallel slices.
func flattenFields(fields map[string]map[string]db.FieldAccess) (keys []string, reads, writes []uint64) {
	for table, fs := range fields {
		for name := range fs {
			keys = append(keys, table+"\x00"+name)
		}
	}
	sort.Strings(keys)
	reads = make([]uint64, len(keys))
	writes = make([]uint64, len(keys))
	for i, k := range keys {
		cut := strings.IndexByte(k, 0)
		a := fields[k[:cut]][k[cut+1:]]
		reads[i], writes[i] = a.Reads, a.Writes
	}
	return keys, reads, writes
}

// unflattenFields rebuilds the profile map ("" on malformed keys reads as
// corrupt to the caller).
func unflattenFields(keys []string, reads, writes []uint64) (map[string]map[string]db.FieldAccess, error) {
	if len(keys) == 0 {
		return nil, nil
	}
	out := make(map[string]map[string]db.FieldAccess)
	for i, k := range keys {
		cut := strings.IndexByte(k, 0)
		if cut < 0 {
			return nil, fmt.Errorf("field key %q missing separator", k)
		}
		table, name := k[:cut], k[cut+1:]
		if out[table] == nil {
			out[table] = make(map[string]db.FieldAccess)
		}
		out[table][name] = db.FieldAccess{Reads: reads[i], Writes: writes[i]}
	}
	return out, nil
}

// Stats counts store traffic since Open.
type Stats struct {
	Hits      uint64 // Get served from LRU or disk
	Misses    uint64 // Get found nothing usable
	Evictions uint64 // corrupt files removed from disk
	PutErrors uint64 // best-effort persists that failed
}

// Store is a persistent profile store with an in-memory LRU front. The
// zero-value-like memory-only form (Open with dir "") never touches disk.
// All methods are safe for concurrent use.
type Store struct {
	dir string

	mu    sync.Mutex
	cap   int
	order *list.List // front = most recent; values are *Entry
	byKey map[Key]*list.Element
	stats Stats
}

// Open returns a store over dir, creating it if needed. An empty dir makes
// a memory-only store (the LRU is the whole store).
func Open(dir string) (*Store, error) {
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("pstore: open %s: %w", dir, err)
		}
	}
	return &Store{
		dir:   dir,
		cap:   DefaultLRUSize,
		order: list.New(),
		byKey: make(map[Key]*list.Element),
	}, nil
}

// Dir returns the backing directory ("" for memory-only stores).
func (s *Store) Dir() string { return s.dir }

// SetLRUSize adjusts the in-memory front's capacity (minimum 1).
func (s *Store) SetLRUSize(n int) {
	if n < 1 {
		n = 1
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.cap = n
	s.trimLocked()
}

// Stats returns a snapshot of the traffic counters.
func (s *Store) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Get returns the stored entry for k, consulting the LRU first and then the
// backing directory. Corrupt disk files are deleted and counted as
// evictions; every failure mode degrades to (nil, false) — a miss.
func (s *Store) Get(k Key) (*Entry, bool) {
	s.mu.Lock()
	if el, ok := s.byKey[k]; ok {
		s.order.MoveToFront(el)
		s.stats.Hits++
		e := el.Value.(*Entry)
		s.mu.Unlock()
		return e, true
	}
	s.mu.Unlock()

	if s.dir == "" {
		s.miss()
		return nil, false
	}
	path := filepath.Join(s.dir, k.Filename())
	e, err := ReadEntry(path)
	switch {
	case err == nil && e.Key() == k:
		s.mu.Lock()
		s.insertLocked(e)
		s.stats.Hits++
		s.mu.Unlock()
		return e, true
	case errors.Is(err, os.ErrNotExist):
		s.miss()
		return nil, false
	default:
		// Corrupt (or valid bytes filed under the wrong name, which is the
		// same betrayal): evict the file and retrain.
		os.Remove(path)
		s.mu.Lock()
		s.stats.Evictions++
		s.stats.Misses++
		s.mu.Unlock()
		return nil, false
	}
}

// Put stores the entry in the LRU and, for disk-backed stores, persists it
// atomically (write to a temp file in the same directory, fsync, rename).
// Persistence is best-effort: a write failure is counted but the in-memory
// entry still serves this process.
func (s *Store) Put(e *Entry) error {
	if e.App == nil || e.Kern == nil {
		return fmt.Errorf("pstore: put %s: entry missing app or kernel profile", e.Spec)
	}
	s.mu.Lock()
	s.insertLocked(e)
	s.mu.Unlock()

	if s.dir == "" {
		return nil
	}
	if err := s.writeFile(e); err != nil {
		s.mu.Lock()
		s.stats.PutErrors++
		s.mu.Unlock()
		return fmt.Errorf("pstore: put %s: %w", e.Spec, err)
	}
	return nil
}

func (s *Store) miss() {
	s.mu.Lock()
	s.stats.Misses++
	s.mu.Unlock()
}

func (s *Store) insertLocked(e *Entry) {
	k := e.Key()
	if el, ok := s.byKey[k]; ok {
		el.Value = e
		s.order.MoveToFront(el)
		return
	}
	s.byKey[k] = s.order.PushFront(e)
	s.trimLocked()
}

func (s *Store) trimLocked() {
	for s.order.Len() > s.cap {
		el := s.order.Back()
		s.order.Remove(el)
		delete(s.byKey, el.Value.(*Entry).Key())
	}
}

func (s *Store) writeFile(e *Entry) error {
	tmp, err := os.CreateTemp(s.dir, ".pstore-tmp-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	bw := bufio.NewWriter(tmp)
	if err := encodeEntry(bw, e); err != nil {
		tmp.Close()
		return err
	}
	if err := bw.Flush(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), filepath.Join(s.dir, e.Key().Filename()))
}

func encodeEntry(w *bufio.Writer, e *Entry) error {
	if _, err := w.WriteString(magic); err != nil {
		return err
	}
	we := wireEntry{
		Spec:      e.Spec,
		Image:     e.Image,
		CreatedAt: e.CreatedAt.UTC(),
		App:       e.App,
		Kern:      e.Kern,
		DCPI:      e.DCPI,
		AppFP:     e.App.Fingerprint(),
		KernFP:    e.Kern.Fingerprint(),
	}
	if e.DCPI != nil {
		we.DCPIFP = e.DCPI.Fingerprint()
	}
	we.KindNames, we.KindFreqs = flattenFreq(e.KindFreq)
	we.FieldKeys, we.FieldReads, we.FieldWrites = flattenFields(e.Fields)
	return gob.NewEncoder(w).Encode(&we)
}

// ReadEntry decodes one store file, verifying the magic header and the
// embedded profile fingerprints. Any mismatch returns an error wrapping
// ErrCorrupt; a missing file returns the underlying os.ErrNotExist.
func ReadEntry(path string) (*Entry, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if !bytes.HasPrefix(raw, []byte(magic)) {
		return nil, fmt.Errorf("%w: %s: bad magic", ErrCorrupt, filepath.Base(path))
	}
	var we wireEntry
	if err := gob.NewDecoder(bytes.NewReader(raw[len(magic):])).Decode(&we); err != nil {
		return nil, fmt.Errorf("%w: %s: %v", ErrCorrupt, filepath.Base(path), err)
	}
	if we.App == nil || we.Kern == nil {
		return nil, fmt.Errorf("%w: %s: missing profile payload", ErrCorrupt, filepath.Base(path))
	}
	if we.App.Fingerprint() != we.AppFP || we.Kern.Fingerprint() != we.KernFP {
		return nil, fmt.Errorf("%w: %s: profile fingerprint mismatch", ErrCorrupt, filepath.Base(path))
	}
	if we.DCPI != nil && we.DCPI.Fingerprint() != we.DCPIFP {
		return nil, fmt.Errorf("%w: %s: dcpi fingerprint mismatch", ErrCorrupt, filepath.Base(path))
	}
	if len(we.KindNames) != len(we.KindFreqs) {
		return nil, fmt.Errorf("%w: %s: kind mix length mismatch", ErrCorrupt, filepath.Base(path))
	}
	if len(we.FieldKeys) != len(we.FieldReads) || len(we.FieldKeys) != len(we.FieldWrites) {
		return nil, fmt.Errorf("%w: %s: field profile length mismatch", ErrCorrupt, filepath.Base(path))
	}
	e := &Entry{
		Spec:      we.Spec,
		Image:     we.Image,
		CreatedAt: we.CreatedAt,
		App:       we.App,
		Kern:      we.Kern,
		DCPI:      we.DCPI,
	}
	if len(we.KindNames) > 0 {
		e.KindFreq = make(map[string]float64, len(we.KindNames))
		for i, name := range we.KindNames {
			e.KindFreq[name] = we.KindFreqs[i]
		}
	}
	fields, err := unflattenFields(we.FieldKeys, we.FieldReads, we.FieldWrites)
	if err != nil {
		return nil, fmt.Errorf("%w: %s: %v", ErrCorrupt, filepath.Base(path), err)
	}
	e.Fields = fields
	return e, nil
}
