package tpcb

import (
	"fmt"

	"codelayout/internal/codegen"
	"codelayout/internal/db"
	"codelayout/internal/workload"
)

func init() {
	workload.Register("tpcb", func() workload.Workload { return New() })
}

// Workload adapts the TPC-B bench to the workload seam.
type Workload struct {
	Scale Scale
	// CrossShardPct overrides the percentage of sharded-machine requests
	// whose account lives on another shard's branch; 0 uses
	// workload.DefaultCrossShardPct, negative disables cross-shard
	// traffic.
	CrossShardPct int
	// HotAccountFrac, in [0, 1), skews account picks: 80% of draws land in
	// the first HotAccountFrac fraction of the draw range (per branch on
	// sharded machines). 0 keeps the classic uniform draw — and leaves runs
	// bit-identical to a workload that never heard of skew.
	HotAccountFrac float64
}

// New returns the TPC-B workload at the paper's 40-branch scale.
func New() *Workload { return NewScaled(DefaultScale()) }

// NewScaled returns the TPC-B workload at an explicit scale.
func NewScaled(sc Scale) *Workload { return &Workload{Scale: sc} }

// Name implements workload.Workload. A hot-account skew names a distinct
// workload — it draws a different request stream, so profiles, memo entries
// and persistent-store keys must never collide with the uniform mix.
func (w *Workload) Name() string {
	if w.HotAccountFrac > 0 {
		return fmt.Sprintf("tpcb-hot%02d", int(w.HotAccountFrac*100))
	}
	return "tpcb"
}

// QuickScale implements workload.Workload: a shrunken database for CI and
// bench runs.
func (w *Workload) QuickScale() workload.Workload {
	return &Workload{
		Scale:          Scale{Branches: 10, TellersPerBranch: 5, AccountsPerBranch: 400},
		CrossShardPct:  w.CrossShardPct,
		HotAccountFrac: w.HotAccountFrac,
	}
}

// validate fails fast on knob values that would silently produce a
// nonsensical mix.
func (w *Workload) validate() error {
	if w.HotAccountFrac < 0 || w.HotAccountFrac >= 1 {
		return fmt.Errorf("tpcb: HotAccountFrac = %v; must be in [0, 1) (0 = uniform)", w.HotAccountFrac)
	}
	return nil
}

// Partitioning implements workload.ShardedWorkload: TPC-B partitions on the
// branch, the key the teller and branch updates already cluster around.
func (w *Workload) Partitioning() workload.Partitioning {
	return workload.Partitioning{Key: "branch", CrossShardPct: workload.EffectiveCrossShardPct(w.CrossShardPct)}
}

// DataPages implements workload.Workload (about 70 hundred-byte rows fit an
// 8 KB page after slot overhead).
func (w *Workload) DataPages() int {
	return w.Scale.Branches*w.Scale.AccountsPerBranch/70 +
		w.Scale.Branches*w.Scale.TellersPerBranch/70 +
		w.Scale.Branches
}

// Load implements workload.Workload.
func (w *Workload) Load(eng *db.Engine) (workload.Instance, error) {
	if err := w.validate(); err != nil {
		return nil, err
	}
	b, err := Load(eng, w.Scale)
	if err != nil {
		return nil, err
	}
	b.HotAccountFrac = w.HotAccountFrac
	return b, nil
}

// RecordSchemas implements workload.RecordSchemas: the per-table field
// schemas the record-layout pass groups.
func (w *Workload) RecordSchemas() []workload.TableSchema { return Schemas() }

// KindRoots implements workload.KindRoots: the local mix runs tpcb_txn, the
// cross-shard variant runs the tpcb_dist model (sharded runs label it
// "tpcb_dist").
func (w *Workload) KindRoots() []workload.KindRoot {
	return []workload.KindRoot{
		{Kind: "tpcb", Root: "tpcb_txn"},
		{Kind: "tpcb_dist", Root: "tpcb_dist"},
	}
}

// Models implements workload.Workload: the TPC-B transaction models,
// mirroring site for site the probe calls RunTxn emits against the engine.
func (w *Workload) Models(env *workload.ModelEnv) []codegen.FnSpec {
	pick := env.Pick
	return []codegen.FnSpec{
		{Name: "upd_account", Body: []codegen.Frag{
			codegen.Seq(7), pick("sql", 6),
			codegen.Call{Fn: "bt_search"},
			codegen.Call{Fn: "lock_acquire"},
			codegen.Call{Fn: "heap_fetch"},
			codegen.Seq(5), pick("row", 4),
			codegen.Call{Fn: "heap_update"},
			codegen.Seq(3),
		}},
		{Name: "upd_teller", Body: []codegen.Frag{
			codegen.Seq(6), pick("sql", 6),
			codegen.Call{Fn: "bt_search"},
			codegen.Call{Fn: "lock_acquire"},
			codegen.Call{Fn: "heap_fetch"},
			codegen.Seq(4), pick("row", 4),
			codegen.Call{Fn: "heap_update"},
			codegen.Seq(3),
		}},
		{Name: "upd_branch", Body: []codegen.Frag{
			codegen.Seq(6), pick("sql", 5),
			codegen.Call{Fn: "lock_acquire"},
			codegen.Call{Fn: "heap_fetch"},
			codegen.Seq(4),
			codegen.Call{Fn: "heap_update"},
			codegen.Seq(3),
		}},
		{Name: "ins_history", Body: []codegen.Frag{
			codegen.Seq(5), pick("sql", 5),
			codegen.Call{Fn: "heap_insert"},
			codegen.Seq(3),
		}},
		{Name: "tpcb_txn", Body: []codegen.Frag{
			codegen.Seq(9), env.ErrPath(), pick("sql", 8),
			codegen.Call{Fn: "txn_begin"},
			codegen.Call{Fn: "upd_account"},
			codegen.Call{Fn: "upd_teller"},
			codegen.Call{Fn: "upd_branch"},
			codegen.Call{Fn: "ins_history"},
			codegen.Call{Fn: "txn_commit"},
			codegen.Seq(6), pick("rt", 4),
		}},
		// The distributed variant (sharded machines): home-shard teller,
		// branch and history, the remote-shard account, then two-phase
		// commit through the shard coordinator.
		{Name: "tpcb_dist", Body: []codegen.Frag{
			codegen.Seq(10), env.ErrPath(), pick("sql", 8),
			codegen.Call{Fn: "txn_begin"},
			codegen.Call{Fn: "txn_begin"},
			codegen.Call{Fn: "upd_teller"},
			codegen.Call{Fn: "upd_branch"},
			codegen.Call{Fn: "upd_account"},
			codegen.Call{Fn: "ins_history"},
			codegen.Call{Fn: "dist_commit"},
			codegen.Seq(6), pick("rt", 4),
		}},
	}
}
