// Package tpcb implements the OLTP workload of the paper: a TPC-B-style
// banking benchmark over the internal/db storage engine. Each transaction
// updates a random account, its teller and branch balances, and appends a
// history record, then commits (forcing the log with group commit).
//
// The database is scaled the way the paper's validated setup scales Oracle:
// 40 branches by default, with the per-branch account count reduced for
// simulation tractability (the paper itself uses a scaled-down 900 MB
// TPC-B database).
package tpcb

import (
	"encoding/binary"
	"fmt"
	"math/rand"

	"codelayout/internal/db"
	"codelayout/internal/workload"
)

// Scale configures database size.
type Scale struct {
	Branches          int
	TellersPerBranch  int
	AccountsPerBranch int
}

// DefaultScale mirrors the paper's 40-branch database, scaled down in
// accounts per branch to keep simulations fast.
func DefaultScale() Scale {
	return Scale{Branches: 40, TellersPerBranch: 10, AccountsPerBranch: 2500}
}

// Lock key spaces.
const (
	lockSpaceAccount = 1
	lockSpaceTeller  = 2
	lockSpaceBranch  = 3
)

// Record sizes per the TPC-B specification: 100-byte account/teller/branch
// rows, 50-byte history rows.
const (
	rowBytes     = 100
	historyBytes = 50
)

// balanceSchema declares the shared account/teller/branch record shape: the
// balance is the only field the transaction paths touch at runtime, so a
// grouped layout pulls it to the record head ahead of the cold id, branch
// and filler bytes. Declaration order reproduces the historical offsets
// (id@0, branch@8, balance@16).
func balanceSchema(table string) workload.TableSchema {
	kinds := []string{"tpcb", "tpcb_dist"}
	return workload.TableSchema{Table: table, Fields: []workload.FieldSchema{
		{Name: "id", Width: 8},
		{Name: "branch", Width: 8},
		{Name: "balance", Width: 8, ReadBy: kinds, WrittenBy: kinds},
		{Name: "filler", Width: rowBytes - 24},
	}}
}

// Schemas declares the workload's table schemas (history is insert-only and
// schema-free: whole-record appends gain nothing from field grouping).
func Schemas() []workload.TableSchema {
	return []workload.TableSchema{
		balanceSchema("account"),
		balanceSchema("teller"),
		balanceSchema("branch"),
	}
}

// rowOffsets is one table's resolved field offsets; encode/decode goes
// through it so a grouped physical layout changes the bytes transparently.
type rowOffsets struct {
	id, branch, balance int
}

func resolveOffsets(t *db.Table) rowOffsets {
	return rowOffsets{id: t.FieldOffset("id"), branch: t.FieldOffset("branch"), balance: t.FieldOffset("balance")}
}

// Bench is a loaded TPC-B database.
type Bench struct {
	Eng   *db.Engine
	Scale Scale

	// HotAccountFrac > 0 skews account draws: 80% of picks land in the
	// first HotAccountFrac fraction of each draw range (see Workload).
	HotAccountFrac float64

	Accounts *db.BTree
	Tellers  *db.BTree

	AcctTable   *db.Table
	TellerTable *db.Table
	BranchTable *db.Table
	HistTable   *db.Table

	acctOff rowOffsets
	tellOff rowOffsets
	brchOff rowOffsets

	branchRID []db.RID
	tellerRID []db.RID

	// owned lists the branches resident in this engine, ascending (every
	// branch for an unsharded load; one hash partition for a shard).
	owned []uint64
}

// Load creates and populates the database through an uninstrumented session
// (the paper starts profiling only after setup and warmup). It checkpoints
// the loaded pages and marks the log flushed, so measured runs start clean.
func Load(eng *db.Engine, sc Scale) (*Bench, error) {
	return loadOwned(eng, sc, nil)
}

// loadOwned loads the slice of the database whose branches satisfy own (nil
// = every branch): the branch rows, their tellers and accounts, and the
// per-engine indexes over them. A shard's engine therefore holds only its
// partition, while IDs stay global so routed transactions address rows the
// same way at every shard count.
func loadOwned(eng *db.Engine, sc Scale, own func(branch uint64) bool) (*Bench, error) {
	if sc.Branches <= 0 || sc.TellersPerBranch <= 0 || sc.AccountsPerBranch <= 0 {
		return nil, fmt.Errorf("tpcb: bad scale %+v", sc)
	}
	b := &Bench{Eng: eng, Scale: sc}
	s := eng.NewSession(0, nil)

	b.AcctTable = eng.CreateTable("account")
	b.TellerTable = eng.CreateTable("teller")
	b.BranchTable = eng.CreateTable("branch")
	b.HistTable = eng.CreateTable("history")
	b.Accounts = eng.CreateBTree("account_pk")
	b.Tellers = eng.CreateBTree("teller_pk")

	// The interleaved schema layout is the default; an engine field hint
	// (a grouped record layout) installed before load wins, and the
	// resolved offsets below follow it.
	for _, ts := range Schemas() {
		if err := eng.Table(ts.Table).EnsureFields(ts.Interleaved()); err != nil {
			return nil, err
		}
	}
	b.acctOff = resolveOffsets(b.AcctTable)
	b.tellOff = resolveOffsets(b.TellerTable)
	b.brchOff = resolveOffsets(b.BranchTable)

	b.branchRID = make([]db.RID, sc.Branches)
	b.tellerRID = make([]db.RID, sc.Branches*sc.TellersPerBranch)
	for br := 0; br < sc.Branches; br++ {
		if own != nil && !own(uint64(br)) {
			continue
		}
		b.owned = append(b.owned, uint64(br))
		b.branchRID[br] = b.BranchTable.Insert(s, encodeRow(b.brchOff, uint64(br), uint64(br), 0))
	}
	for t := 0; t < sc.Branches*sc.TellersPerBranch; t++ {
		branch := uint64(t / sc.TellersPerBranch)
		if own != nil && !own(branch) {
			continue
		}
		rid := b.TellerTable.Insert(s, encodeRow(b.tellOff, uint64(t), branch, 0))
		b.tellerRID[t] = rid
		if err := b.Tellers.Insert(s, uint64(t), rid.Pack()); err != nil {
			return nil, err
		}
	}
	for a := 0; a < sc.Branches*sc.AccountsPerBranch; a++ {
		branch := uint64(a / sc.AccountsPerBranch)
		if own != nil && !own(branch) {
			continue
		}
		rid := b.AcctTable.Insert(s, encodeRow(b.acctOff, uint64(a), branch, 0))
		if err := b.Accounts.Insert(s, uint64(a), rid.Pack()); err != nil {
			return nil, err
		}
	}
	eng.Pool.FlushAll()
	eng.WAL.MarkFlushed(eng.WAL.CurrentLSN())
	return b, nil
}

// NumAccounts returns the total account count.
func (b *Bench) NumAccounts() int { return b.Scale.Branches * b.Scale.AccountsPerBranch }

// NumTellers returns the total teller count.
func (b *Bench) NumTellers() int { return b.Scale.Branches * b.Scale.TellersPerBranch }

// encodeRow packs a fixed 100-byte row (id, branch, balance, filler) at the
// table's resolved field offsets.
func encodeRow(o rowOffsets, id, branch uint64, balance int64) []byte {
	row := make([]byte, rowBytes)
	binary.LittleEndian.PutUint64(row[o.id:], id)
	binary.LittleEndian.PutUint64(row[o.branch:], branch)
	binary.LittleEndian.PutUint64(row[o.balance:], uint64(balance))
	return row
}

// balance reads the balance field at the resolved offset.
func (o rowOffsets) getBalance(row []byte) int64 {
	return int64(binary.LittleEndian.Uint64(row[o.balance:]))
}

// setBalance writes the balance field at the resolved offset.
func (o rowOffsets) setBalance(row []byte, v int64) {
	binary.LittleEndian.PutUint64(row[o.balance:], uint64(v))
}

// Input is one transaction request from a client.
type Input struct {
	Account uint64
	Teller  uint64
	Branch  uint64
	Delta   int64
}

// Gen draws a TPC-B request: uniform teller, account uniform or hot-skewed
// (HotAccountFrac), delta in [-999999, +999999]. The branch is the teller's
// branch.
func (b *Bench) Gen(r *rand.Rand) Input {
	teller := uint64(r.Intn(b.NumTellers()))
	return Input{
		Account: uint64(hotIndex(r, b.NumAccounts(), b.HotAccountFrac)),
		Teller:  teller,
		Branch:  teller / uint64(b.Scale.TellersPerBranch),
		Delta:   r.Int63n(1_999_999) - 999_999,
	}
}

// hotIndex draws an index in [0, n): uniform when frac is 0, otherwise 80%
// of draws land in the first max(1, frac*n) indexes — the classic hot-set
// contention model. frac must have been validated into [0, 1).
func hotIndex(r *rand.Rand, n int, frac float64) int {
	if frac <= 0 {
		return r.Intn(n)
	}
	hot := int(frac * float64(n))
	if hot < 1 {
		hot = 1
	}
	if hot < n && r.Intn(100) < 80 {
		return r.Intn(hot)
	}
	return r.Intn(n)
}

// GenInput implements workload.Instance.
func (b *Bench) GenInput(r *rand.Rand) workload.Input { return b.Gen(r) }

// RunTxn implements workload.Instance; in must come from GenInput.
func (b *Bench) RunTxn(s *db.Session, in workload.Input) {
	b.Run(s, in.(Input))
}

// KindOf implements workload.Labeler: the classic mix has one transaction
// shape.
func (b *Bench) KindOf(workload.Input) string { return "tpcb" }

// Check implements workload.Instance: TPC-B balance conservation. Every
// transaction applies one delta to one account, one teller and one branch,
// so the three totals must agree.
func (b *Bench) Check(s *db.Session) error {
	var accounts, tellers, branches int64
	for a := 0; a < b.NumAccounts(); a++ {
		accounts += b.AccountBalance(s, uint64(a))
	}
	for t := 0; t < b.NumTellers(); t++ {
		tellers += b.TellerBalance(s, uint64(t))
	}
	for br := 0; br < b.Scale.Branches; br++ {
		branches += b.BranchBalance(s, uint64(br))
	}
	if accounts != branches || tellers != branches {
		return fmt.Errorf("tpcb: balances diverged: accounts=%d tellers=%d branches=%d",
			accounts, tellers, branches)
	}
	return nil
}

// Run executes one TPC-B transaction on the session and returns the new
// account balance. This is the instrumented top-level entry whose model is
// the root of the application's call graph.
func (b *Bench) Run(s *db.Session, in Input) int64 {
	s.PB.Enter("tpcb_txn")
	defer s.PB.Leave("tpcb_txn")
	s.PB.Data(s.ScratchAddr(1024), 256, true) // parsed request / session state
	s.Begin()
	bal := b.updAccount(s, in.Account, in.Delta)
	b.updTeller(s, in.Teller, in.Delta)
	b.updBranch(s, in.Branch, in.Delta)
	b.insHistory(s, in)
	s.Commit()
	return bal
}

func (b *Bench) updAccount(s *db.Session, acct uint64, delta int64) int64 {
	s.PB.Enter("upd_account")
	defer s.PB.Leave("upd_account")
	s.PB.Data(s.ScratchAddr(0), 192, true) // cursor/bind state
	packed, ok := b.Accounts.Search(s, acct)
	if !ok {
		panic(fmt.Sprintf("tpcb: account %d missing", acct))
	}
	rid := db.UnpackRID(packed)
	s.LockX(db.LockKey(lockSpaceAccount, acct))
	row := b.AcctTable.FetchFields(s, rid, "balance")
	bal := b.acctOff.getBalance(row) + delta
	b.acctOff.setBalance(row, bal)
	s.PB.Data(s.ScratchAddr(256), 128, true) // row image in private buffer
	b.AcctTable.UpdateFields(s, rid, row, "balance")
	return bal
}

func (b *Bench) updTeller(s *db.Session, teller uint64, delta int64) {
	s.PB.Enter("upd_teller")
	defer s.PB.Leave("upd_teller")
	packed, ok := b.Tellers.Search(s, teller)
	if !ok {
		panic(fmt.Sprintf("tpcb: teller %d missing", teller))
	}
	rid := db.UnpackRID(packed)
	s.LockX(db.LockKey(lockSpaceTeller, teller))
	row := b.TellerTable.FetchFields(s, rid, "balance")
	b.tellOff.setBalance(row, b.tellOff.getBalance(row)+delta)
	s.PB.Data(s.ScratchAddr(512), 128, true)
	b.TellerTable.UpdateFields(s, rid, row, "balance")
}

func (b *Bench) updBranch(s *db.Session, branch uint64, delta int64) {
	s.PB.Enter("upd_branch")
	defer s.PB.Leave("upd_branch")
	rid := b.branchRID[branch]
	s.LockX(db.LockKey(lockSpaceBranch, branch))
	row := b.BranchTable.FetchFields(s, rid, "balance")
	b.brchOff.setBalance(row, b.brchOff.getBalance(row)+delta)
	s.PB.Data(s.ScratchAddr(768), 128, true)
	b.BranchTable.UpdateFields(s, rid, row, "balance")
}

func (b *Bench) insHistory(s *db.Session, in Input) {
	s.PB.Enter("ins_history")
	defer s.PB.Leave("ins_history")
	rec := make([]byte, historyBytes)
	binary.LittleEndian.PutUint64(rec[0:], in.Account)
	binary.LittleEndian.PutUint64(rec[8:], in.Teller)
	binary.LittleEndian.PutUint64(rec[16:], in.Branch)
	binary.LittleEndian.PutUint64(rec[24:], uint64(in.Delta))
	binary.LittleEndian.PutUint64(rec[32:], s.Txn().ID) // timestamp stand-in
	b.HistTable.Insert(s, rec)
}

// AccountBalance reads an account balance outside any transaction (tests
// and verification).
func (b *Bench) AccountBalance(s *db.Session, acct uint64) int64 {
	packed, ok := b.Accounts.Search(s, acct)
	if !ok {
		panic(fmt.Sprintf("tpcb: account %d missing", acct))
	}
	row := b.AcctTable.Fetch(s, db.UnpackRID(packed))
	return b.acctOff.getBalance(row)
}

// BranchBalance reads a branch balance (verification).
func (b *Bench) BranchBalance(s *db.Session, branch uint64) int64 {
	row := b.BranchTable.Fetch(s, b.branchRID[branch])
	return b.brchOff.getBalance(row)
}

// TellerBalance reads a teller balance (verification).
func (b *Bench) TellerBalance(s *db.Session, teller uint64) int64 {
	row := b.TellerTable.Fetch(s, b.tellerRID[teller])
	return b.tellOff.getBalance(row)
}
