package tpcb

import (
	"fmt"
	"math/rand"

	"codelayout/internal/db"
	"codelayout/internal/shard"
	"codelayout/internal/workload"
)

// Sharded is the TPC-B database hash-partitioned by branch across N
// engines: a teller's transaction homes on its branch's shard, and a
// CrossShardPct fraction of requests draw their account from another
// shard's branch, turning the classic transaction into a distributed one
// (home teller/branch/history plus a remote account update under 2PC).
//
// Local transactions keep the account→teller→branch lock order; distributed
// ones acquire their home locks first and the remote account last, so
// opposing cross-shard flows can form genuine distributed deadlock cycles —
// which the shared waits-for graph resolves by victim abort.
type Sharded struct {
	Scale    Scale
	Map      shard.Map
	Shards   []*Bench
	crossPct int
	hotFrac  float64

	branchShard []int      // branch → owning shard
	localBy     [][]uint64 // shard → branches it owns
	remoteBy    [][]uint64 // shard → branches on other shards
}

// LoadSharded implements workload.ShardedWorkload.
func (w *Workload) LoadSharded(engs []*db.Engine) (workload.ShardedInstance, error) {
	if len(engs) < 2 {
		return nil, fmt.Errorf("tpcb: LoadSharded needs >= 2 engines (got %d); use Load", len(engs))
	}
	if err := w.validate(); err != nil {
		return nil, err
	}
	sc := w.Scale
	sb := &Sharded{
		Scale:    sc,
		Map:      shard.Map{Shards: len(engs)},
		crossPct: w.Partitioning().CrossShardPct,
		hotFrac:  w.HotAccountFrac,

		branchShard: make([]int, sc.Branches),
		localBy:     make([][]uint64, len(engs)),
		remoteBy:    make([][]uint64, len(engs)),
	}
	for br := 0; br < sc.Branches; br++ {
		home := sb.Map.Of(uint64(br))
		sb.branchShard[br] = home
		for i := range engs {
			if i == home {
				sb.localBy[i] = append(sb.localBy[i], uint64(br))
			} else {
				sb.remoteBy[i] = append(sb.remoteBy[i], uint64(br))
			}
		}
	}
	for i, eng := range engs {
		sh := i
		b, err := loadOwned(eng, sc, func(branch uint64) bool { return sb.branchShard[branch] == sh })
		if err != nil {
			return nil, err
		}
		b.HotAccountFrac = w.HotAccountFrac
		sb.Shards = append(sb.Shards, b)
	}
	return sb, nil
}

// acctBranch returns the branch an account belongs to.
func (sb *Sharded) acctBranch(acct uint64) uint64 {
	return acct / uint64(sb.Scale.AccountsPerBranch)
}

// GenInput implements workload.ShardedInstance: uniform teller (fixing the
// home branch and shard), then an account drawn from the home shard's
// branches — or, for a CrossShardPct fraction, from a remote shard's.
func (sb *Sharded) GenInput(r *rand.Rand) workload.Input {
	sc := sb.Scale
	teller := uint64(r.Intn(sc.Branches * sc.TellersPerBranch))
	branch := teller / uint64(sc.TellersPerBranch)
	home := sb.branchShard[branch]
	pool := sb.localBy[home]
	if r.Intn(100) < sb.crossPct && len(sb.remoteBy[home]) > 0 {
		pool = sb.remoteBy[home]
	}
	acctBranch := pool[r.Intn(len(pool))]
	return Input{
		Account: acctBranch*uint64(sc.AccountsPerBranch) + uint64(hotIndex(r, sc.AccountsPerBranch, sb.hotFrac)),
		Teller:  teller,
		Branch:  branch,
		Delta:   r.Int63n(1_999_999) - 999_999,
	}
}

// Home implements workload.ShardedInstance.
func (sb *Sharded) Home(in workload.Input) int {
	return sb.branchShard[in.(Input).Branch]
}

// Remote implements workload.ShardedInstance.
func (sb *Sharded) Remote(in workload.Input) bool {
	req := in.(Input)
	return sb.branchShard[sb.acctBranch(req.Account)] != sb.branchShard[req.Branch]
}

// KindOf implements workload.Labeler: cross-shard requests run the
// distributed 2PC variant, whose commit path (forced prepare plus the
// coordinator's forced commit) has its own latency distribution.
func (sb *Sharded) KindOf(in workload.Input) string {
	if sb.Remote(in) {
		return "tpcb_dist"
	}
	return "tpcb"
}

// RunTxn implements workload.ShardedInstance: single-shard requests run the
// classic transaction on their home engine; cross-shard requests run the
// distributed variant — home teller/branch/history, remote account, 2PC.
func (sb *Sharded) RunTxn(ss []*db.Session, in workload.Input) {
	req := in.(Input)
	home := sb.branchShard[req.Branch]
	acctShard := sb.branchShard[sb.acctBranch(req.Account)]
	if acctShard == home {
		sb.Shards[home].Run(ss[home], req)
		return
	}
	hs, rs := ss[home], ss[acctShard]
	hb, rb := sb.Shards[home], sb.Shards[acctShard]
	pb := hs.PB
	pb.Enter("tpcb_dist")
	defer pb.Leave("tpcb_dist")
	pb.Data(hs.ScratchAddr(1024), 256, true)
	hs.Begin()
	rs.Begin()
	hb.updTeller(hs, req.Teller, req.Delta)
	hb.updBranch(hs, req.Branch, req.Delta)
	rb.updAccount(rs, req.Account, req.Delta)
	hb.insHistory(hs, req)
	shard.Commit2PC(hs, rs)
}

// Class implements workload.FastPath: every TPC-B request has one shape;
// whether it crosses shards is exactly what the predictor must guess, so the
// class cannot depend on it.
func (sb *Sharded) Class(workload.Input) string { return "tpcb" }

// RunLocal implements workload.FastPath: the classic transaction on the
// home engine alone. A request whose account turns out to live on another
// shard is discovered honestly — the account search misses on the home
// shard's tree (a modeled bt_found=false path, exactly what a real engine
// would execute) — and unwinds through workload.Mispredict before touching
// any foreign engine.
func (sb *Sharded) RunLocal(s *db.Session, in workload.Input) {
	req := in.(Input)
	home := sb.branchShard[req.Branch]
	if sb.branchShard[sb.acctBranch(req.Account)] == home {
		sb.Shards[home].Run(s, req)
		return
	}
	b := sb.Shards[home]
	pb := s.PB
	pb.Enter("tpcb_txn")
	defer pb.Leave("tpcb_txn")
	pb.Data(s.ScratchAddr(1024), 256, true)
	s.Begin()
	pb.Enter("upd_account")
	defer pb.Leave("upd_account")
	pb.Data(s.ScratchAddr(0), 192, true)
	if _, ok := b.Accounts.Search(s, req.Account); ok {
		panic(fmt.Sprintf("tpcb: remote account %d found on home shard %d", req.Account, home))
	}
	workload.Mispredict(pb)
}

// Check implements workload.ShardedInstance: TPC-B balance conservation
// over the union of shards. Cross-shard transactions split their delta
// between two engines, so no single shard balances — only the global sums
// must agree.
func (sb *Sharded) Check(ss []*db.Session) error {
	var accounts, tellers, branches int64
	for i, b := range sb.Shards {
		s := ss[i]
		for _, br := range b.owned {
			branches += b.BranchBalance(s, br)
			for t := 0; t < sb.Scale.TellersPerBranch; t++ {
				tellers += b.TellerBalance(s, br*uint64(sb.Scale.TellersPerBranch)+uint64(t))
			}
			for a := 0; a < sb.Scale.AccountsPerBranch; a++ {
				accounts += b.AccountBalance(s, br*uint64(sb.Scale.AccountsPerBranch)+uint64(a))
			}
		}
	}
	if accounts != branches || tellers != branches {
		return fmt.Errorf("tpcb: sharded balances diverged: accounts=%d tellers=%d branches=%d",
			accounts, tellers, branches)
	}
	return nil
}
