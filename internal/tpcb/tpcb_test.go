package tpcb_test

import (
	"math/rand"
	"testing"

	"codelayout/internal/db"
	"codelayout/internal/tpcb"
	"codelayout/internal/workload"
)

func load(t *testing.T, sc tpcb.Scale) (*tpcb.Bench, *db.Session) {
	t.Helper()
	eng := db.NewEngine(db.Config{BufferPoolPages: 8192})
	b, err := tpcb.Load(eng, sc)
	if err != nil {
		t.Fatal(err)
	}
	return b, eng.NewSession(1, nil)
}

func smallScale() tpcb.Scale {
	return tpcb.Scale{Branches: 4, TellersPerBranch: 5, AccountsPerBranch: 100}
}

func TestLoadPopulates(t *testing.T) {
	b, s := load(t, smallScale())
	if got := b.Accounts.Count(s); got != 400 {
		t.Fatalf("accounts = %d", got)
	}
	if got := b.Tellers.Count(s); got != 20 {
		t.Fatalf("tellers = %d", got)
	}
	if b.AccountBalance(s, 0) != 0 {
		t.Fatal("nonzero initial balance")
	}
}

func TestTransactionsBalance(t *testing.T) {
	b, s := load(t, smallScale())
	r := rand.New(rand.NewSource(1))
	var total int64
	perBranch := make(map[uint64]int64)
	perTeller := make(map[uint64]int64)
	perAccount := make(map[uint64]int64)
	for i := 0; i < 300; i++ {
		in := b.Gen(r)
		b.RunTxn(s, in)
		total += in.Delta
		perBranch[in.Branch] += in.Delta
		perTeller[in.Teller] += in.Delta
		perAccount[in.Account] += in.Delta
	}
	// TPC-B consistency: balances reflect the sum of applied deltas.
	var sumBranches int64
	for br, want := range perBranch {
		got := b.BranchBalance(s, br)
		if got != want {
			t.Fatalf("branch %d balance %d, want %d", br, got, want)
		}
		sumBranches += got
	}
	if sumBranches != total {
		t.Fatalf("branch sum %d != total %d", sumBranches, total)
	}
	for tl, want := range perTeller {
		if got := b.TellerBalance(s, tl); got != want {
			t.Fatalf("teller %d balance %d, want %d", tl, got, want)
		}
	}
	for ac, want := range perAccount {
		if got := b.AccountBalance(s, ac); got != want {
			t.Fatalf("account %d balance %d, want %d", ac, got, want)
		}
	}
	if b.Eng.Committed != 300 {
		t.Fatalf("committed = %d", b.Eng.Committed)
	}
}

func TestHistoryGrows(t *testing.T) {
	b, s := load(t, smallScale())
	r := rand.New(rand.NewSource(2))
	for i := 0; i < 50; i++ {
		b.RunTxn(s, b.Gen(r))
	}
	if len(b.HistTable.Pages) == 0 {
		t.Fatal("no history pages")
	}
	// Each committed transaction forces the log.
	if b.Eng.WAL.Flushes < 50 {
		t.Fatalf("flushes = %d", b.Eng.WAL.Flushes)
	}
}

func TestRecoveryAfterWorkload(t *testing.T) {
	b, s := load(t, smallScale())
	r := rand.New(rand.NewSource(3))
	want := make(map[uint64]int64)
	for i := 0; i < 100; i++ {
		in := b.Gen(r)
		b.RunTxn(s, in)
		want[in.Account] += in.Delta
	}
	// Crash without checkpointing; recover from load-time disk + log.
	if _, err := db.Recover(b.Eng.Disk, b.Eng.WAL); err != nil {
		t.Fatal(err)
	}
	// Rebuild a fresh engine over the recovered disk is beyond this test's
	// scope; instead verify recovered page images contain the right
	// balances by reading through a scratch page for a few accounts.
	for acct, delta := range want {
		packed, ok := b.Accounts.Search(s, acct)
		if !ok {
			t.Fatalf("account %d missing", acct)
		}
		rid := db.UnpackRID(packed)
		img := b.Eng.Disk.Read(rid.Page)
		pg := &db.Page{ID: rid.Page, Data: img}
		rec, err := pg.Record(int(rid.Slot))
		if err != nil {
			t.Fatal(err)
		}
		if got := int64(uint64le(rec[16:])); got != delta {
			t.Fatalf("recovered account %d balance %d, want %d", acct, got, delta)
		}
		break // one account suffices with map iteration randomized
	}
}

func uint64le(b []byte) uint64 {
	var v uint64
	for i := 7; i >= 0; i-- {
		v = v<<8 | uint64(b[i])
	}
	return v
}

// TestCheckInvariant exercises the workload.Instance invariant checker:
// clean after transactions, failing after corruption.
func TestCheckInvariant(t *testing.T) {
	b, s := load(t, smallScale())
	r := rand.New(rand.NewSource(9))
	for i := 0; i < 100; i++ {
		b.RunTxn(s, b.Gen(r))
	}
	if err := b.Check(s); err != nil {
		t.Fatal(err)
	}
	// Corrupt one teller balance behind the workload's back; Check must
	// notice the conservation break.
	packed, ok := b.Tellers.Search(s, 0)
	if !ok {
		t.Fatal("teller 0 missing")
	}
	rid := db.UnpackRID(packed)
	row := b.TellerTable.Fetch(s, rid)
	row[16] ^= 0xFF
	b.TellerTable.Update(s, rid, row)
	if err := b.Check(s); err == nil {
		t.Fatal("Check missed a corrupted teller balance")
	}
}

// TestWorkloadAdapter covers the workload seam: registry resolution, quick
// scaling, and page estimation.
func TestWorkloadAdapter(t *testing.T) {
	wl, err := workload.New("tpcb")
	if err != nil {
		t.Fatal(err)
	}
	if wl.Name() != "tpcb" {
		t.Fatalf("name = %q", wl.Name())
	}
	q := wl.QuickScale()
	if q.DataPages() >= wl.DataPages() {
		t.Fatalf("quick scale not smaller: %d vs %d", q.DataPages(), wl.DataPages())
	}
	eng := db.NewEngine(db.Config{BufferPoolPages: q.DataPages() + 4096})
	inst, err := q.Load(eng)
	if err != nil {
		t.Fatal(err)
	}
	s := eng.NewSession(1, nil)
	r := rand.New(rand.NewSource(10))
	for i := 0; i < 20; i++ {
		inst.RunTxn(s, inst.GenInput(r))
	}
	if err := inst.Check(s); err != nil {
		t.Fatal(err)
	}
	if _, err := workload.New("nope"); err == nil {
		t.Fatal("expected error for unknown workload")
	}
}

func TestGenInputRanges(t *testing.T) {
	b, _ := load(t, smallScale())
	r := rand.New(rand.NewSource(4))
	for i := 0; i < 1000; i++ {
		in := b.Gen(r)
		if in.Account >= uint64(b.NumAccounts()) {
			t.Fatalf("account %d out of range", in.Account)
		}
		if in.Teller >= uint64(b.NumTellers()) {
			t.Fatalf("teller %d out of range", in.Teller)
		}
		if in.Branch != in.Teller/uint64(b.Scale.TellersPerBranch) {
			t.Fatalf("branch %d not teller's", in.Branch)
		}
		if in.Delta < -999_999 || in.Delta > 999_999 {
			t.Fatalf("delta %d out of range", in.Delta)
		}
	}
}
