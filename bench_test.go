// Benchmarks: one per reproduced table/figure (printing the regenerated
// rows/series on first run), plus microbenchmarks of the core components.
//
// The figure benches share one quick-configuration session; run
//
//	go test -bench=. -benchmem
//
// for the full set, or `go run ./cmd/layoutlab -full -run all` for the
// paper-scale tables.
package codelayout_test

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"sync"
	"testing"
	"time"

	"codelayout"
	"codelayout/internal/appmodel"
	"codelayout/internal/cache"
	"codelayout/internal/codegen"
	"codelayout/internal/core"
	"codelayout/internal/expt"
	"codelayout/internal/kernel"
	"codelayout/internal/machine"
	"codelayout/internal/ordere"
	"codelayout/internal/profile"
	"codelayout/internal/program"
	"codelayout/internal/progtest"
	"codelayout/internal/pstore"
	"codelayout/internal/search"
	"codelayout/internal/tpcb"
	"codelayout/internal/trace"
	"codelayout/internal/workload"
	"codelayout/internal/ycsb"
)

var (
	sessOnce sync.Once
	sess     *expt.Session
	sessErr  error
	printed  sync.Map
)

func session(b *testing.B) *expt.Session {
	b.Helper()
	sessOnce.Do(func() {
		sess, sessErr = expt.NewSession(expt.QuickOptions())
	})
	if sessErr != nil {
		b.Fatal(sessErr)
	}
	return sess
}

// benchFigure runs one experiment per iteration (simulations are memoized
// inside the session after the first run) and prints its tables once.
func benchFigure(b *testing.B, id string) {
	s := session(b)
	for i := 0; i < b.N; i++ {
		tables, err := s.Run(id)
		if err != nil {
			b.Fatal(err)
		}
		if _, done := printed.LoadOrStore(id, true); !done {
			fmt.Fprintf(os.Stdout, "\n--- %s ---\n", id)
			for _, t := range tables {
				t.Render(os.Stdout)
			}
		}
	}
}

func BenchmarkFig03_ExecutionProfile(b *testing.B)   { benchFigure(b, "fig03") }
func BenchmarkFig04_MissSweep(b *testing.B)          { benchFigure(b, "fig04") }
func BenchmarkFig05_RelativeMisses(b *testing.B)     { benchFigure(b, "fig05") }
func BenchmarkFig06_Associativity(b *testing.B)      { benchFigure(b, "fig06") }
func BenchmarkFig07_OptCombos(b *testing.B)          { benchFigure(b, "fig07") }
func BenchmarkFig08_SequenceLengths(b *testing.B)    { benchFigure(b, "fig08") }
func BenchmarkFig09_WordUsage(b *testing.B)          { benchFigure(b, "fig09") }
func BenchmarkFig10_WordReuse(b *testing.B)          { benchFigure(b, "fig10") }
func BenchmarkFig11_LineLifetimes(b *testing.B)      { benchFigure(b, "fig11") }
func BenchmarkFig12_CombinedStreams(b *testing.B)    { benchFigure(b, "fig12") }
func BenchmarkFig13_Interference(b *testing.B)       { benchFigure(b, "fig13") }
func BenchmarkFig14_TLBandL2(b *testing.B)           { benchFigure(b, "fig14") }
func BenchmarkFig15_ExecutionTime(b *testing.B)      { benchFigure(b, "fig15") }
func BenchmarkText_Footprint(b *testing.B)           { benchFigure(b, "footprint") }
func BenchmarkText_HW21164(b *testing.B)             { benchFigure(b, "hw21164") }
func BenchmarkText_Speedups(b *testing.B)            { benchFigure(b, "speedup") }
func BenchmarkText_KernelOpt(b *testing.B)           { benchFigure(b, "kernopt") }
func BenchmarkAblation_Splitting(b *testing.B)       { benchFigure(b, "abl-split") }
func BenchmarkAblation_CFA(b *testing.B)             { benchFigure(b, "abl-cfa") }
func BenchmarkAblation_SamplingProfile(b *testing.B) { benchFigure(b, "abl-profile") }

// ---- Microbenchmarks of the core components ----

// BenchmarkICacheFetch measures raw cache-simulator throughput.
func BenchmarkICacheFetch(b *testing.B) {
	c := cache.New(cache.Config{SizeBytes: 64 << 10, LineBytes: 128, Assoc: 4})
	r := rand.New(rand.NewSource(1))
	runs := make([]trace.FetchRun, 4096)
	for i := range runs {
		runs[i] = trace.FetchRun{Addr: uint64(r.Intn(1<<20)) &^ 3, Words: int32(1 + r.Intn(16))}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Fetch(runs[i&4095])
	}
	b.ReportMetric(float64(c.Stats().MissRate()*100), "miss%")
}

// BenchmarkChainProc measures the chaining pass.
func BenchmarkChainProc(b *testing.B) {
	r := rand.New(rand.NewSource(2))
	p := progtest.RandProgram(r, 64)
	pf := progtest.RandProfile(r, p, 50, 400)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, pr := range p.Procs {
			core.ChainProc(p, pr, pf)
		}
	}
}

// BenchmarkPettisHansen measures the ordering pass on a moderate unit graph.
func BenchmarkPettisHansen(b *testing.B) {
	r := rand.New(rand.NewSource(3))
	p := progtest.RandProgram(r, 200)
	pf := progtest.RandProfile(r, p, 100, 500)
	chains := make(map[program.ProcID][]core.Chain, len(p.Procs))
	for _, pr := range p.Procs {
		chains[pr.ID] = core.ChainProc(p, pr, pf)
	}
	units := core.BuildUnits(p, pf, chains, core.SplitFine)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.PettisHansen(p, pf, units)
	}
}

// BenchmarkOptimizeAll measures the whole Spike pipeline on the real OLTP
// image.
func BenchmarkOptimizeAll(b *testing.B) {
	s := session(b)
	prof, err := s.Profile()
	if err != nil {
		b.Fatal(err)
	}
	img := s.AppImage()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := core.Optimize(img.Prog, prof, core.Options{
			Chain: true, Split: core.SplitFine, Order: core.OrderPettisHansen,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEmitterWalk measures instruction-stream generation throughput.
func BenchmarkEmitterWalk(b *testing.B) {
	s := session(b)
	img := s.AppImage()
	l, err := codelayout.BaselineLayout(img.Prog)
	if err != nil {
		b.Fatal(err)
	}
	em := codegen.NewEmitter(img, l, 4)
	var instr uint64
	em.Sink = func(_ uint64, words int32) { instr += uint64(words) }
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		em.RunAuto("sql_0")
	}
	b.ReportMetric(float64(instr)/float64(b.N), "instr/op")
}

// benchWorkloads names the tiny per-workload setups the cross-workload
// benchmarks run against.
func benchWorkloads() map[string]workload.Workload {
	return map[string]workload.Workload{
		"tpcb":   tpcb.NewScaled(tpcb.Scale{Branches: 4, TellersPerBranch: 4, AccountsPerBranch: 100}),
		"ordere": ordere.NewScaled(ordere.Scale{Warehouses: 2, DistrictsPerWarehouse: 3, CustomersPerDistrict: 30, Items: 100}),
	}
}

var (
	benchImgOnce sync.Once
	benchImgs    map[string]*codegen.Image
	benchImgErr  error
)

// benchImages builds one small app image per workload, shared across
// benchmark iterations.
func benchImages(b *testing.B) map[string]*codegen.Image {
	b.Helper()
	benchImgOnce.Do(func() {
		benchImgs = make(map[string]*codegen.Image)
		for name, wl := range benchWorkloads() {
			img, err := appmodel.Build(appmodel.Config{Seed: 42, LibScale: 0.25, ColdWords: 200_000, Workload: wl})
			if err != nil {
				benchImgErr = err
				return
			}
			benchImgs[name] = img
		}
	})
	if benchImgErr != nil {
		b.Fatal(benchImgErr)
	}
	return benchImgs
}

// BenchmarkMachineTxns measures full-system simulation throughput in
// transactions per benchmark op (10 txns per iteration), one row per
// workload.
func BenchmarkMachineTxns(b *testing.B) {
	s := session(b)
	kimg := s.KernelImage()
	kernL, err := codelayout.BaselineLayout(kimg.Prog)
	if err != nil {
		b.Fatal(err)
	}
	imgs := benchImages(b)
	for name, wl := range benchWorkloads() {
		img := imgs[name]
		appL, err := codelayout.BaselineLayout(img.Prog)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				m, err := machine.New(machine.Config{
					CPUs: 1, ProcsPerCPU: 4, Seed: int64(i),
					WarmupTxns: 2, Transactions: 10,
					Workload: wl,
					AppImage: img, AppLayout: appL, KernImage: kimg, KernLayout: kernL,
				})
				if err != nil {
					b.Fatal(err)
				}
				if _, err := m.Run(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCrossWorkloadOptimize measures the full optimization pipeline on
// each workload's image (profile collection + optimize + optimized re-run),
// printing the per-workload miss reduction once.
func BenchmarkCrossWorkloadOptimize(b *testing.B) {
	s := session(b)
	kimg := s.KernelImage()
	kernL, err := codelayout.BaselineLayout(kimg.Prog)
	if err != nil {
		b.Fatal(err)
	}
	imgs := benchImages(b)
	for name, wl := range benchWorkloads() {
		img := imgs[name]
		appL, err := codelayout.BaselineLayout(img.Prog)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				px := profile.NewPixie(img.Prog, "train")
				cfg := machine.Config{
					CPUs: 1, ProcsPerCPU: 4, Seed: 100,
					WarmupTxns: 2, Transactions: 30,
					Workload: wl,
					AppImage: img, AppLayout: appL, KernImage: kimg, KernLayout: kernL,
					AppCollector: px,
				}
				m, err := machine.New(cfg)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := m.Run(); err != nil {
					b.Fatal(err)
				}
				optL, _, err := core.Optimize(img.Prog, px.Profile, core.Options{
					Chain: true, Split: core.SplitFine, Order: core.OrderPettisHansen,
				})
				if err != nil {
					b.Fatal(err)
				}
				measure := func(l *program.Layout) uint64 {
					ic := cache.New(cache.Config{SizeBytes: 32 << 10, LineBytes: 128, Assoc: 2})
					cfg := cfg
					cfg.AppLayout = l
					cfg.AppCollector = nil
					cfg.Seed = 7
					cfg.Sinks = []trace.Sink{trace.AppOnly(ic)}
					m, err := machine.New(cfg)
					if err != nil {
						b.Fatal(err)
					}
					if _, err := m.Run(); err != nil {
						b.Fatal(err)
					}
					return ic.Stats().Misses
				}
				base, opt := measure(appL), measure(optL)
				if key := "xwl-" + name; i == 0 {
					if _, done := printed.LoadOrStore(key, true); !done {
						fmt.Fprintf(os.Stdout, "%s: app misses base=%d opt=%d (%.1f%% reduction)\n",
							name, base, opt, 100*(1-float64(opt)/float64(base)))
					}
				}
			}
		})
	}
}

// BenchmarkShardedMachineTxns measures full-system simulation throughput on
// the sharded multi-engine machine (4 shards, cross-shard 2PC traffic
// included), one row per workload.
func BenchmarkShardedMachineTxns(b *testing.B) {
	s := session(b)
	kimg := s.KernelImage()
	kernL, err := codelayout.BaselineLayout(kimg.Prog)
	if err != nil {
		b.Fatal(err)
	}
	shardWorkloads := map[string]workload.Workload{
		"tpcb":   tpcb.NewScaled(tpcb.Scale{Branches: 6, TellersPerBranch: 3, AccountsPerBranch: 100}),
		"ordere": ordere.NewScaled(ordere.Scale{Warehouses: 6, DistrictsPerWarehouse: 3, CustomersPerDistrict: 30, Items: 100}),
	}
	for name, wl := range shardWorkloads {
		img, err := appmodel.Build(appmodel.Config{Seed: 42, LibScale: 0.25, ColdWords: 200_000, Workload: wl})
		if err != nil {
			b.Fatal(err)
		}
		appL, err := codelayout.BaselineLayout(img.Prog)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(name, func(b *testing.B) {
			var cross, aborts uint64
			for i := 0; i < b.N; i++ {
				m, err := machine.New(machine.Config{
					CPUs: 2, ProcsPerCPU: 6, Seed: int64(i), Shards: 4,
					WarmupTxns: 2, Transactions: 20,
					Workload: wl,
					AppImage: img, AppLayout: appL, KernImage: kimg, KernLayout: kernL,
				})
				if err != nil {
					b.Fatal(err)
				}
				res, err := m.Run()
				if err != nil {
					b.Fatal(err)
				}
				if err := m.CheckInvariants(); err != nil {
					b.Fatal(err)
				}
				cross += res.CrossShard
				aborts += res.Aborted
			}
			b.ReportMetric(float64(cross)/float64(b.N), "crossshard/op")
			b.ReportMetric(float64(aborts)/float64(b.N), "aborts/op")
		})
	}
}

// BenchmarkGroupCommit is the group-commit acceptance bench: at a fixed
// shard count under a commit-heavy TPC-B mix, it measures the
// blocked-on-log instruction-time per transaction for per-commit flushing,
// immediate group commit, and a 40k-instruction batching window. Group
// commit must flush less and block less than per-commit flushing; the
// printed line records the reduction.
func BenchmarkGroupCommit(b *testing.B) {
	s := session(b)
	kimg := s.KernelImage()
	kernL, err := codelayout.BaselineLayout(kimg.Prog)
	if err != nil {
		b.Fatal(err)
	}
	wl := tpcb.NewScaled(tpcb.Scale{Branches: 48, TellersPerBranch: 4, AccountsPerBranch: 100})
	img, err := appmodel.Build(appmodel.Config{Seed: 42, LibScale: 0.25, ColdWords: 200_000, Workload: wl})
	if err != nil {
		b.Fatal(err)
	}
	appL, err := codelayout.BaselineLayout(img.Prog)
	if err != nil {
		b.Fatal(err)
	}
	modes := []struct {
		name      string
		perCommit bool
		window    uint64
	}{
		{"percommit", true, 0},
		{"group", false, 0},
		{"window40k", false, 40_000},
	}
	results := map[string]machine.Result{}
	for _, mode := range modes {
		b.Run(mode.name, func(b *testing.B) {
			var res machine.Result
			for i := 0; i < b.N; i++ {
				m, err := machine.New(machine.Config{
					CPUs: 4, ProcsPerCPU: 16, Seed: 7, Shards: 2,
					PerCommitLogFlush: mode.perCommit, GroupCommitWindowInstr: mode.window,
					WarmupTxns: 40, Transactions: 300,
					Workload: wl,
					AppImage: img, AppLayout: appL, KernImage: kimg, KernLayout: kernL,
				})
				if err != nil {
					b.Fatal(err)
				}
				res, err = m.Run()
				if err != nil {
					b.Fatal(err)
				}
			}
			results[mode.name] = res
			b.ReportMetric(float64(res.LogBlockedInstr)/float64(res.Committed), "logblocked-instr/txn")
			b.ReportMetric(float64(res.LogFlushes), "flushes")
			b.ReportMetric(float64(res.GroupedCommits), "grouped")
		})
	}
	pc, grp := results["percommit"], results["group"]
	if pc.Committed > 0 && grp.Committed > 0 {
		if _, done := printed.LoadOrStore("groupcommit", true); !done {
			fmt.Fprintf(os.Stdout,
				"group commit vs per-commit flushing (2 shards): flushes %d -> %d, blocked-on-log %.1fM -> %.1fM instr (%.1f%% less)\n",
				pc.LogFlushes, grp.LogFlushes,
				float64(pc.LogBlockedInstr)/1e6, float64(grp.LogBlockedInstr)/1e6,
				100*(1-float64(grp.LogBlockedInstr)/float64(pc.LogBlockedInstr)))
		}
	}
}

// BenchmarkPredictFastPath is the predictive fast path acceptance bench: at
// 8 shards under a low-cross-shard TPC-B mix, it compares transaction cost
// with the fast path off (every transaction routed, cross-shard ones through
// the 2PC coordinator) and on (predicted-local transactions commit through
// the plain per-shard session). The printed line records the instr/txn and
// p99 deltas plus the mispredict count.
func BenchmarkPredictFastPath(b *testing.B) {
	s := session(b)
	kimg := s.KernelImage()
	kernL, err := codelayout.BaselineLayout(kimg.Prog)
	if err != nil {
		b.Fatal(err)
	}
	wl := tpcb.NewScaled(tpcb.Scale{Branches: 24, TellersPerBranch: 3, AccountsPerBranch: 100})
	wl.CrossShardPct = 1
	img, err := appmodel.Build(appmodel.Config{
		Seed: 42, LibScale: 0.25, ColdWords: 200_000, Workload: wl, FastPath: true,
	})
	if err != nil {
		b.Fatal(err)
	}
	appL, err := codelayout.BaselineLayout(img.Prog)
	if err != nil {
		b.Fatal(err)
	}
	results := map[string]machine.Result{}
	for _, mode := range []struct {
		name string
		fast bool
	}{{"off", false}, {"on", true}} {
		b.Run(mode.name, func(b *testing.B) {
			var res machine.Result
			for i := 0; i < b.N; i++ {
				m, err := machine.New(machine.Config{
					CPUs: 2, ProcsPerCPU: 8, Seed: 7, Shards: 8,
					PredictFastPath: mode.fast,
					WarmupTxns:      80, Transactions: 400,
					Workload: wl,
					AppImage: img, AppLayout: appL, KernImage: kimg, KernLayout: kernL,
				})
				if err != nil {
					b.Fatal(err)
				}
				res, err = m.Run()
				if err != nil {
					b.Fatal(err)
				}
				if err := m.CheckInvariants(); err != nil {
					b.Fatal(err)
				}
			}
			results[mode.name] = res
			b.ReportMetric(float64(res.BusyInstrs)/float64(res.Committed), "instr/txn")
			b.ReportMetric(float64(res.Latency.P99), "p99-instr")
			b.ReportMetric(float64(res.Mispredicted), "mispredicts")
		})
	}
	off, on := results["off"], results["on"]
	if off.Committed > 0 && on.Committed > 0 {
		if _, done := printed.LoadOrStore("fastpath", true); !done {
			fmt.Fprintf(os.Stdout,
				"predictive fast path (8 shards, 1%% cross): instr/txn %.0f -> %.0f (%.1f%% less), p99 %.2fM -> %.2fM instr, %d/%d predicted local, %d mispredicted\n",
				float64(off.BusyInstrs)/float64(off.Committed),
				float64(on.BusyInstrs)/float64(on.Committed),
				100*(1-(float64(on.BusyInstrs)/float64(on.Committed))/(float64(off.BusyInstrs)/float64(off.Committed))),
				float64(off.Latency.P99)/1e6, float64(on.Latency.P99)/1e6,
				on.Predicted, on.Committed, on.Mispredicted)
		}
	}
}

// fusionBenchRow is one layout's entry in the BENCH_fusion.json snapshot.
type fusionBenchRow struct {
	InstrPerTxn  float64 `json:"instr_per_txn"`
	L1IMissRatio float64 `json:"l1i_miss_ratio"`
	P50          uint64  `json:"p50_instr"`
	P99          uint64  `json:"p99_instr"`
}

// BenchmarkTxFuse is the transaction-fusion acceptance bench: base vs
// ipchain vs the fusion combo on TPC-B and order entry under the
// fetch-stall clock (40 instr-times per L1I miss), one sub-bench per
// workload × layout. A full pass over every sub-bench writes the
// machine-readable BENCH_fusion.json snapshot that pins the fusion pass's
// perf trajectory.
func BenchmarkTxFuse(b *testing.B) {
	const stall = 40
	fusionOpts := func(wl workload.Workload) expt.Options {
		o := expt.QuickOptions()
		o.Transactions = 60
		o.WarmupTxns = 15
		o.Train.Txns = 150
		o.CPUs = 2
		o.ProcsPerCPU = 4
		o.LibScale = 0.3
		o.ColdWords = 400_000
		o.KernColdWords = 100_000
		o.FetchStallPenaltyInstr = stall
		o.Workload = wl
		return o
	}
	twl := tpcb.NewScaled(tpcb.Scale{Branches: 6, TellersPerBranch: 3, AccountsPerBranch: 120})
	owl := ordere.NewScaled(ordere.Scale{Warehouses: 2, DistrictsPerWarehouse: 3, CustomersPerDistrict: 40, Items: 120})
	src, err := expt.NewProfileSource(fusionOpts(twl), owl)
	if err != nil {
		b.Fatal(err)
	}
	layouts := []string{"base", "ipchain", "fusion"}
	snapshot := map[string]map[string]fusionBenchRow{}
	for _, w := range []struct {
		name string
		wl   workload.Workload
	}{{"tpcb", twl}, {"ordere", owl}} {
		eo := fusionOpts(w.wl)
		s, err := expt.NewSessionFrom(src, eo)
		if err != nil {
			b.Fatal(err)
		}
		rows := map[string]fusionBenchRow{}
		for _, layout := range layouts {
			b.Run(w.name+"/"+layout, func(b *testing.B) {
				var m *expt.Measure
				for i := 0; i < b.N; i++ {
					var err error
					if m, err = s.Measure(layout, eo.CPUs); err != nil {
						b.Fatal(err)
					}
				}
				row := fusionBenchRow{
					InstrPerTxn:  float64(m.Res.BusyInstrs) / float64(m.Res.Committed),
					L1IMissRatio: m.App4W[64].MissRate(),
					P50:          m.Res.Latency.P50,
					P99:          m.Res.Latency.P99,
				}
				rows[layout] = row
				b.ReportMetric(row.InstrPerTxn, "instr/txn")
				b.ReportMetric(row.L1IMissRatio*100, "miss%")
				b.ReportMetric(float64(row.P50), "p50-instr")
				b.ReportMetric(float64(row.P99), "p99-instr")
			})
		}
		if len(rows) == len(layouts) {
			snapshot[w.name] = rows
		}
	}
	// Only a complete sweep (no -bench sub-filter) refreshes the snapshot.
	if len(snapshot) != 2 {
		return
	}
	if _, done := printed.LoadOrStore("txfuse-json", true); !done {
		out := struct {
			Note    string                               `json:"note"`
			Stall   uint64                               `json:"fetch_stall_penalty_instr"`
			Layouts map[string]map[string]fusionBenchRow `json:"workloads"`
		}{
			Note:    "base vs ipchain vs txfuse (fusion combo); latencies in instruction-times under the fetch-stall clock",
			Stall:   stall,
			Layouts: snapshot,
		}
		data, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			b.Fatal(err)
		}
		if err := os.WriteFile("BENCH_fusion.json", append(data, '\n'), 0o644); err != nil {
			b.Fatal(err)
		}
		fmt.Fprintln(os.Stdout, "wrote BENCH_fusion.json")
	}
}

// BenchmarkContinuousPGO is the continuous-PGO acceptance bench, in two
// halves. train/cold vs train/warm time a session's training against a
// profile store: the cold run executes the profiling simulation and
// persists it, the warm one loads the entry from disk and skips training.
// reopt/drift runs the forced read→update mix inversion twice — once frozen
// on the stale read-trained layout, once with the online re-optimizer — and
// reports the tail on each side of the hot swap. A full pass writes the
// BENCH_pgo.json snapshot.
func BenchmarkContinuousPGO(b *testing.B) {
	storeOpts := func() expt.Options {
		o := expt.QuickOptions()
		o.Transactions = 50
		o.WarmupTxns = 10
		o.Train.Txns = 120
		o.CPUs = 1
		o.ProcsPerCPU = 4
		o.Workload = tpcb.NewScaled(tpcb.Scale{Branches: 4, TellersPerBranch: 4, AccountsPerBranch: 200})
		o.LibScale = 0.3
		o.ColdWords = 400_000
		o.KernColdWords = 100_000
		return o
	}
	// trainOnce is one process's training against the store directory:
	// fresh Store, fresh session, timed Train only (image building is
	// identical on both sides and excluded).
	trainOnce := func(b *testing.B, dir string) time.Duration {
		store, err := pstore.Open(dir)
		if err != nil {
			b.Fatal(err)
		}
		o := storeOpts()
		o.ProfileStore = store
		s, err := expt.NewSession(o)
		if err != nil {
			b.Fatal(err)
		}
		start := time.Now()
		if err := s.Train(); err != nil {
			b.Fatal(err)
		}
		return time.Since(start)
	}
	var coldMs, warmMs float64
	b.Run("train/cold", func(b *testing.B) {
		var total time.Duration
		for i := 0; i < b.N; i++ {
			total += trainOnce(b, b.TempDir())
		}
		coldMs = float64(total.Milliseconds()) / float64(b.N)
		b.ReportMetric(coldMs, "ms/train")
	})
	b.Run("train/warm", func(b *testing.B) {
		dir := b.TempDir()
		trainOnce(b, dir) // populate the store outside the measured loop
		var total time.Duration
		for i := 0; i < b.N; i++ {
			total += trainOnce(b, dir)
		}
		warmMs = float64(total.Milliseconds()) / float64(b.N)
		b.ReportMetric(warmMs, "ms/train")
	})

	var reoptRow struct {
		Reopts         uint64 `json:"reopts"`
		SwapStallInstr uint64 `json:"swap_stall_instr"`
		StaleP99       uint64 `json:"stale_layout_update_p99"`
		PreSwapP99     uint64 `json:"pre_swap_p99"`
		PostSwapP99    uint64 `json:"post_swap_p99"`
	}
	b.Run("reopt/drift", func(b *testing.B) {
		wl := func(shift int) *ycsb.Workload {
			return &ycsb.Workload{Scale: ycsb.Scale{Records: 4000}, ReadPct: 100,
				ShiftAfterGens: shift, ShiftReadPct: 0}
		}
		// Full-size library code: the conflict-miss regime where layout
		// choice moves the tail (see internal/machine/reopt_test.go).
		app, err := appmodel.Build(appmodel.Config{Seed: 42, LibScale: 1.0, ColdWords: 400_000, Workload: wl(0)})
		if err != nil {
			b.Fatal(err)
		}
		appL, err := program.BaselineLayout(app.Prog)
		if err != nil {
			b.Fatal(err)
		}
		kern, err := kernel.Build(kernel.Config{Seed: 43, ColdWords: 50_000})
		if err != nil {
			b.Fatal(err)
		}
		kernL, err := program.BaselineLayout(kern.Prog)
		if err != nil {
			b.Fatal(err)
		}
		optimize := func(pf *profile.Profile) (*program.Layout, error) {
			l, _, err := core.Optimize(app.Prog, pf, core.Options{
				Chain: true, Split: core.SplitFine, Order: core.OrderPettisHansen,
			})
			return l, err
		}
		px := profile.NewPixie(app.Prog, "train")
		tm, err := machine.New(machine.Config{
			CPUs: 1, ProcsPerCPU: 4, Seed: 7, WarmupTxns: 10, Transactions: 120,
			Workload: wl(0), AppImage: app, AppLayout: appL,
			KernImage: kern, KernLayout: kernL, AppCollector: px,
		})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := tm.Run(); err != nil {
			b.Fatal(err)
		}
		trainedL, err := optimize(px.Profile)
		if err != nil {
			b.Fatal(err)
		}
		trainFreq := tm.KindFrequencies()
		serving := func() machine.Config {
			return machine.Config{
				CPUs: 1, ProcsPerCPU: 4, Seed: 7, WarmupTxns: 10, Transactions: 900,
				Workload: wl(180), AppImage: app, AppLayout: trainedL,
				KernImage: kern, KernLayout: kernL,
				FetchStallPenaltyInstr: 250,
				LogWriteDelayInstr:     4_000, PreadDelayInstr: 4_000,
			}
		}
		for i := 0; i < b.N; i++ {
			mBase, err := machine.New(serving())
			if err != nil {
				b.Fatal(err)
			}
			if _, err := mBase.Run(); err != nil {
				b.Fatal(err)
			}
			// Pre-shift traffic is 100% reads, so the baseline's update-kind
			// p99 is exactly the drifted traffic on the stale layout.
			for _, c := range mBase.LatencyByKind() {
				if c.Kind == "update" {
					reoptRow.StaleP99 = c.Summary.P99
				}
			}
			cfg := serving()
			cfg.ReoptimizeEveryTxns = 60
			cfg.TrainKindFreq = trainFreq
			cfg.Reoptimize = optimize
			mRe, err := machine.New(cfg)
			if err != nil {
				b.Fatal(err)
			}
			reRes, err := mRe.Run()
			if err != nil {
				b.Fatal(err)
			}
			reoptRow.Reopts = reRes.Reopts
			reoptRow.SwapStallInstr = reRes.SwapStallInstr
			reoptRow.PreSwapP99 = reRes.PreSwapP99
			reoptRow.PostSwapP99 = reRes.PostSwapP99
		}
		b.ReportMetric(float64(reoptRow.StaleP99), "stale-p99")
		b.ReportMetric(float64(reoptRow.PostSwapP99), "postswap-p99")
		b.ReportMetric(float64(reoptRow.Reopts), "swaps")
	})

	// Only a complete sweep (no -bench sub-filter) refreshes the snapshot.
	if coldMs == 0 || warmMs == 0 || reoptRow.PostSwapP99 == 0 {
		return
	}
	if _, done := printed.LoadOrStore("pgo-json", true); !done {
		out := struct {
			Note  string `json:"note"`
			Store struct {
				ColdTrainMs float64 `json:"cold_train_ms"`
				WarmTrainMs float64 `json:"warm_train_ms"`
			} `json:"profile_store"`
			Reopt interface{} `json:"online_reopt"`
		}{
			Note:  "cold vs warm-store training wall time, and the online re-optimizer's tail on each side of the hot swap under a forced read-to-update mix inversion (latencies in instruction-times)",
			Reopt: &reoptRow,
		}
		out.Store.ColdTrainMs = coldMs
		out.Store.WarmTrainMs = warmMs
		data, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			b.Fatal(err)
		}
		if err := os.WriteFile("BENCH_pgo.json", append(data, '\n'), 0o644); err != nil {
			b.Fatal(err)
		}
		fmt.Fprintf(os.Stdout, "wrote BENCH_pgo.json (train %.0fms cold -> %.0fms warm; update p99 %d stale -> %d post-swap)\n",
			coldMs, warmMs, reoptRow.StaleP99, reoptRow.PostSwapP99)
	}
}

// searchBenchRow is one workload's winner-vs-fusion entry in the
// BENCH_search.json snapshot.
type searchBenchRow struct {
	WinnerInstrPerTxn float64 `json:"winner_instr_per_txn"`
	FusionInstrPerTxn float64 `json:"fusion_instr_per_txn"`
	WinnerP50         uint64  `json:"winner_p50_instr"`
	FusionP50         uint64  `json:"fusion_p50_instr"`
}

// BenchmarkPipelineSearch is the evolutionary-search acceptance bench: a
// fixed-seed search over tpcb+ordere+ycsb at tiny scale, timed end to end.
// The metrics record how much the memo deduplicated (simulations executed vs
// evaluations requested); the BENCH_search.json snapshot pins the winner's
// spec and its instr/txn and p50 against the hand-built fusion combo per
// workload.
func BenchmarkPipelineSearch(b *testing.B) {
	const stall = 40
	searchOpts := func(wl workload.Workload) expt.Options {
		o := expt.QuickOptions()
		o.Transactions = 60
		o.WarmupTxns = 15
		o.Train.Txns = 150
		o.CPUs = 2
		o.ProcsPerCPU = 4
		o.LibScale = 0.3
		o.ColdWords = 400_000
		o.KernColdWords = 100_000
		o.FetchStallPenaltyInstr = stall
		o.Workload = wl
		return o
	}
	mkWorkloads := func() []workload.Workload {
		return []workload.Workload{
			tpcb.NewScaled(tpcb.Scale{Branches: 4, TellersPerBranch: 4, AccountsPerBranch: 150}),
			ordere.NewScaled(ordere.Scale{Warehouses: 2, DistrictsPerWarehouse: 3, CustomersPerDistrict: 40, Items: 120}),
			ycsb.NewScaled(ycsb.Scale{Records: 4_000}),
		}
	}
	var res *search.Result
	var wallMs float64
	for i := 0; i < b.N; i++ {
		wls := mkWorkloads()
		cfg := search.Config{Population: 6, Generations: 3, Seed: 7}
		for _, wl := range wls {
			cfg.Workloads = append(cfg.Workloads, search.WorkloadWeight{Workload: wl, Weight: 1})
		}
		start := time.Now()
		r, err := search.Run(searchOpts(wls[0]), cfg)
		if err != nil {
			b.Fatal(err)
		}
		res = r
		wallMs = float64(time.Since(start).Milliseconds())
	}
	b.ReportMetric(wallMs, "ms/search")
	b.ReportMetric(res.Winner.Fitness, "fitness")
	b.ReportMetric(float64(res.Requested), "requested")
	b.ReportMetric(float64(res.Executed), "executed")

	// Re-measure winner vs fusion per workload for the snapshot (the search's
	// internal sessions are not exposed; these runs are identical tiny sims).
	wls := mkWorkloads()
	src, err := expt.NewProfileSource(searchOpts(wls[0]), wls[1:]...)
	if err != nil {
		b.Fatal(err)
	}
	snapshot := map[string]searchBenchRow{}
	for _, wl := range wls {
		eo := searchOpts(wl)
		eo.Train.Workload = wls[0]
		s, err := expt.NewSessionFrom(src, eo)
		if err != nil {
			b.Fatal(err)
		}
		win, err := s.Measure(res.Winner.Spec, eo.CPUs)
		if err != nil {
			b.Fatal(err)
		}
		fus, err := s.Measure("fusion", eo.CPUs)
		if err != nil {
			b.Fatal(err)
		}
		snapshot[wl.Name()] = searchBenchRow{
			WinnerInstrPerTxn: float64(win.Res.BusyInstrs+win.Res.FetchStallInstr) / float64(win.Res.Committed),
			FusionInstrPerTxn: float64(fus.Res.BusyInstrs+fus.Res.FetchStallInstr) / float64(fus.Res.Committed),
			WinnerP50:         win.Res.Latency.P50,
			FusionP50:         fus.Res.Latency.P50,
		}
	}
	type genPoint struct {
		Gen         int     `json:"gen"`
		BestFitness float64 `json:"best_fitness"`
	}
	var trajectory []genPoint
	for _, g := range res.Trajectory {
		trajectory = append(trajectory, genPoint{Gen: g.Gen, BestFitness: g.Best.Fitness})
	}
	if _, done := printed.LoadOrStore("search-json", true); !done {
		out := struct {
			Note        string                    `json:"note"`
			WallMs      float64                   `json:"wall_ms"`
			Requested   int                       `json:"evaluations_requested"`
			Unique      int                       `json:"unique_specs"`
			Executed    uint64                    `json:"simulations_executed"`
			PerWorkload uint64                    `json:"simulations_executed_per_workload"`
			WinnerSpec  string                    `json:"winner_spec"`
			Fitness     float64                   `json:"winner_fitness"`
			Trajectory  []genPoint                `json:"trajectory"`
			Workloads   map[string]searchBenchRow `json:"workloads"`
		}{
			Note:        "fixed-seed evolutionary pipeline search (pop 6, 3 gens, tpcb+ordere+ycsb); fitness is base-normalized instr+stall/txn; per-workload executed < requested is the memo-dedup margin",
			WallMs:      wallMs,
			Requested:   res.Requested,
			Unique:      res.Unique,
			Executed:    res.Executed,
			PerWorkload: res.Executed / 3,
			WinnerSpec:  res.Winner.Spec,
			Fitness:     res.Winner.Fitness,
			Trajectory:  trajectory,
			Workloads:   snapshot,
		}
		data, err := json.MarshalIndent(out, "", "  ")
		if err != nil {
			b.Fatal(err)
		}
		if err := os.WriteFile("BENCH_search.json", append(data, '\n'), 0o644); err != nil {
			b.Fatal(err)
		}
		fmt.Fprintf(os.Stdout, "wrote BENCH_search.json (winner %s, fitness %.4f, %d executed/workload for %d requested)\n",
			res.Winner.Spec, res.Winner.Fitness, res.Executed/3, res.Requested)
	}
}

// BenchmarkPixieCollection measures profiling overhead.
func BenchmarkPixieCollection(b *testing.B) {
	s := session(b)
	img := s.AppImage()
	l, err := codelayout.BaselineLayout(img.Prog)
	if err != nil {
		b.Fatal(err)
	}
	px := profile.NewPixie(img.Prog, "bench")
	em := codegen.NewEmitter(img, l, 5)
	em.Sink = func(uint64, int32) {}
	em.Collector = px
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		em.RunAuto("sql_0")
	}
}
