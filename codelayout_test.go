package codelayout_test

import (
	"math/rand"
	"testing"

	"codelayout"
	"codelayout/internal/progtest"
)

func TestFacadeOptimizePipeline(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	p := progtest.RandProgram(r, 8)
	pf := progtest.RandProfile(r, p, 20, 300)
	l, rep, err := codelayout.Optimize(p, pf, codelayout.OptAll())
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
	if rep.Units == 0 {
		t.Fatal("empty report")
	}
}

func TestFacadePassPipeline(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	p := progtest.RandProgram(r, 6)
	pf := progtest.RandProfile(r, p, 20, 300)
	pl, err := codelayout.ParsePipeline("chain,split:fine,porder:ph")
	if err != nil {
		t.Fatal(err)
	}
	l, rep, err := pl.Run(p, pf)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Validate(); err != nil {
		t.Fatal(err)
	}
	// The same pipeline through the Options wrapper is identical.
	want, _, err := codelayout.Optimize(p, pf, codelayout.OptAll())
	if err != nil {
		t.Fatal(err)
	}
	for b := range l.Addr {
		if l.Addr[b] != want.Addr[b] {
			t.Fatalf("pipeline and Optimize diverged at block %d", b)
		}
	}
	if rep.Units == 0 {
		t.Fatal("empty report")
	}
	if _, err := codelayout.ComboPipeline("ipchain"); err != nil {
		t.Fatal(err)
	}
	names := codelayout.RegisteredPasses()
	if len(names) < 7 {
		t.Fatalf("registered passes = %v", names)
	}
}

func TestFacadeCombosMatchPaper(t *testing.T) {
	names := make([]string, 0, 6)
	for _, c := range codelayout.Combos() {
		names = append(names, c.Name)
	}
	want := []string{"base", "porder", "chain", "chain+split", "chain+porder", "all"}
	for i, n := range want {
		if names[i] != n {
			t.Fatalf("combo %d = %q, want %q", i, names[i], n)
		}
	}
}

func TestFacadeImageBuilders(t *testing.T) {
	cfg := codelayout.DefaultImageConfig(1)
	cfg.LibScale = 0.15
	cfg.ColdWords = 50_000
	img, err := codelayout.BuildOLTPImage(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if img.Prog.FindProc("tpcb_txn") == nil {
		t.Fatal("missing tpcb_txn")
	}
	kcfg := codelayout.DefaultKernelConfig(2)
	kcfg.ColdWords = 20_000
	kern, err := codelayout.BuildKernelImage(kcfg)
	if err != nil {
		t.Fatal(err)
	}
	if kern.Prog.FindProc("svc_log_write") == nil {
		t.Fatal("missing svc_log_write")
	}
}

func TestFacadeMachineRun(t *testing.T) {
	cfg := codelayout.DefaultImageConfig(1)
	cfg.LibScale = 0.15
	cfg.ColdWords = 50_000
	img, err := codelayout.BuildOLTPImage(cfg)
	if err != nil {
		t.Fatal(err)
	}
	kcfg := codelayout.DefaultKernelConfig(2)
	kcfg.ColdWords = 20_000
	kern, err := codelayout.BuildKernelImage(kcfg)
	if err != nil {
		t.Fatal(err)
	}
	appL, err := codelayout.BaselineLayout(img.Prog)
	if err != nil {
		t.Fatal(err)
	}
	kernL, err := codelayout.BaselineLayout(kern.Prog)
	if err != nil {
		t.Fatal(err)
	}
	px := codelayout.NewPixie(img.Prog, "train")
	m, err := codelayout.NewMachine(codelayout.MachineConfig{
		CPUs: 1, ProcsPerCPU: 2, Seed: 3,
		WarmupTxns: 2, Transactions: 20,
		Workload: codelayout.TPCBScaled(codelayout.Scale{Branches: 3, TellersPerBranch: 3, AccountsPerBranch: 100}),
		AppImage: img, AppLayout: appL,
		KernImage: kern, KernLayout: kernL,
		AppCollector: px,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Committed != 20 || px.Profile.TotalBlocks() == 0 {
		t.Fatalf("committed=%d profileBlocks=%d", res.Committed, px.Profile.TotalBlocks())
	}
	// The collected profile should drive a working optimization.
	opt, _, err := codelayout.Optimize(img.Prog, px.Profile, codelayout.OptAll())
	if err != nil {
		t.Fatal(err)
	}
	if err := opt.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestFacadeExperimentIDs(t *testing.T) {
	ids := codelayout.ExperimentIDs()
	if len(ids) != 20 {
		t.Fatalf("experiments = %d", len(ids))
	}
}

func TestFacadeWorkloadRegistry(t *testing.T) {
	names := codelayout.Workloads()
	want := map[string]bool{"tpcb": false, "ordere": false, "ycsb": false}
	for _, n := range names {
		if _, ok := want[n]; ok {
			want[n] = true
		}
	}
	for n, seen := range want {
		if !seen {
			t.Fatalf("workload %q not registered (have %v)", n, names)
		}
	}
	if codelayout.TPCB().Name() != "tpcb" {
		t.Fatal("TPCB() helper broken")
	}
	if codelayout.YCSB().Name() != "ycsb" {
		t.Fatal("YCSB() helper broken")
	}
	if _, err := codelayout.NewWorkload("nope"); err == nil {
		t.Fatal("expected error for unknown workload")
	}
}

func TestFacadeRegisterWorkload(t *testing.T) {
	mk := func() codelayout.Workload { return codelayout.YCSBMix("facade-mix", 50) }
	if err := codelayout.RegisterWorkload("facade-mix", mk); err != nil {
		t.Fatal(err)
	}
	if err := codelayout.RegisterWorkload("facade-mix", mk); err == nil {
		t.Fatal("duplicate registration must error, not panic")
	}
	wl, err := codelayout.NewWorkload("facade-mix")
	if err != nil {
		t.Fatal(err)
	}
	if wl.Name() != "facade-mix" {
		t.Fatalf("name = %q", wl.Name())
	}
	found := false
	for _, n := range codelayout.Workloads() {
		if n == "facade-mix" {
			found = true
		}
	}
	if !found {
		t.Fatal("registered mix missing from Workloads()")
	}
}

// TestFacadeTrainEvalSeam: the train/eval split is reachable through the
// facade — a shared profile source, a session over it, and a transplanted
// measurement keyed separately from the self-trained one.
func TestFacadeTrainEvalSeam(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation in -short mode")
	}
	o := codelayout.QuickSessionOptions()
	o.Transactions = 30
	o.WarmupTxns = 10
	o.Train.Txns = 80
	o.CPUs = 1
	o.ProcsPerCPU = 3
	o.LibScale = 0.2
	o.ColdWords = 200_000
	o.KernColdWords = 60_000
	o.Workload = codelayout.TPCBScaled(codelayout.Scale{Branches: 4, TellersPerBranch: 3, AccountsPerBranch: 100})
	stock := codelayout.YCSB().QuickScale()
	src, err := codelayout.NewProfileSource(o, stock)
	if err != nil {
		t.Fatal(err)
	}
	s, err := codelayout.NewSessionFrom(src, o)
	if err != nil {
		t.Fatal(err)
	}
	self, err := s.Measure("all", o.CPUs)
	if err != nil {
		t.Fatal(err)
	}
	cross, err := s.MeasureFrom(codelayout.TrainConfig{Workload: stock}, "all", o.CPUs)
	if err != nil {
		t.Fatal(err)
	}
	if self == cross {
		t.Fatal("transplanted measure aliases the self-trained memo entry")
	}
}
